"""Per-workload structure coverage extracted from campaign reach sets.

A campaign already computes, for every sampled ``(wire, cycle, delay)``
injection, the *dynamically reachable set* — the downstream state bits a
delay fault there actually corrupts under this workload's traffic
(:mod:`repro.core.dynamic_reach`).  This module reuses that signal as a
coverage metric: a workload **covers** a wire (or a cycle) when at least
one of its injection records there is dynamically reachable, i.e. the
workload's traffic propagates a fault on that wire into architectural
state.  Wires no workload covers are blind spots of the campaign suite —
exactly what DAVOS-style coverage-driven campaign management optimizes.

:class:`CoverageVector` is the per-(structure, workload) summary;
:func:`coverage_from_result` extracts one from a merged campaign result at
zero additional simulation cost.  Vectors persist in the content-addressed
verdict cache (under the workload-scoped ``meta`` table, keyed by
:func:`coverage_key`), and :func:`select_workloads` is the greedy
maximum-marginal-coverage selector behind ``api.generate_workloads`` and
the ``repro genwork`` CLI.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "CoverageVector",
    "WorkloadSelection",
    "coverage_from_result",
    "coverage_key",
    "coverage_key_for_plan",
    "select_workloads",
    "union_coverage",
]


@dataclass(frozen=True)
class CoverageVector:
    """Which of one structure's wires/cycles a workload exercises.

    ``covered_wires`` are structure wire indices with at least one
    dynamically reachable injection record; ``covered_cycles`` the sampled
    cycles contributing one.  ``wire_count`` is the structure's |E|, so
    :attr:`wire_coverage` is comparable across campaigns of any sample
    size; the ``sampled_*`` counts record how much of the structure this
    campaign actually probed.
    """

    structure: str
    wire_count: int
    covered_wires: FrozenSet[int]
    covered_cycles: FrozenSet[int]
    sampled_wires: int = 0
    sampled_cycles: int = 0

    @property
    def num_covered_wires(self) -> int:
        return len(self.covered_wires)

    @property
    def num_covered_cycles(self) -> int:
        return len(self.covered_cycles)

    @property
    def wire_coverage(self) -> float:
        """Covered fraction of the structure's full wire population."""
        if not self.wire_count:
            return 0.0
        return len(self.covered_wires) / self.wire_count

    @property
    def sampled_wire_coverage(self) -> float:
        """Covered fraction of the wires this campaign sampled."""
        if not self.sampled_wires:
            return 0.0
        return len(self.covered_wires) / self.sampled_wires

    def marginal_wires(self, covered: AbstractSet[int]) -> int:
        """How many wires this vector would add to *covered*."""
        return len(self.covered_wires - covered)

    def union(self, other: "CoverageVector") -> "CoverageVector":
        """Merge two vectors over the same structure.

        ``sampled_*`` take the maximum — unions are meaningful across
        campaigns sharing one sampling plan, where the per-workload counts
        agree anyway.
        """
        if other.structure != self.structure:
            raise ValueError(
                f"cannot union coverage of {self.structure!r} "
                f"with {other.structure!r}"
            )
        return CoverageVector(
            structure=self.structure,
            wire_count=max(self.wire_count, other.wire_count),
            covered_wires=self.covered_wires | other.covered_wires,
            covered_cycles=self.covered_cycles | other.covered_cycles,
            sampled_wires=max(self.sampled_wires, other.sampled_wires),
            sampled_cycles=max(self.sampled_cycles, other.sampled_cycles),
        )

    def to_payload(self) -> Dict:
        """JSON-serializable form; :meth:`from_payload` round-trips it."""
        return {
            "structure": self.structure,
            "wire_count": self.wire_count,
            "covered_wires": sorted(self.covered_wires),
            "covered_cycles": sorted(self.covered_cycles),
            "sampled_wires": self.sampled_wires,
            "sampled_cycles": self.sampled_cycles,
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "CoverageVector":
        return cls(
            structure=str(payload["structure"]),
            wire_count=int(payload["wire_count"]),
            covered_wires=frozenset(int(w) for w in payload["covered_wires"]),
            covered_cycles=frozenset(
                int(c) for c in payload["covered_cycles"]
            ),
            sampled_wires=int(payload.get("sampled_wires", 0)),
            sampled_cycles=int(payload.get("sampled_cycles", 0)),
        )


def coverage_from_result(result) -> CoverageVector:
    """Extract a :class:`CoverageVector` from a merged campaign result.

    *result* is a :class:`repro.core.results.StructureCampaignResult`; a
    wire/cycle counts as covered when any of its records (any delay) has a
    non-empty dynamically reachable set.  Pure bookkeeping over records the
    campaign already computed — no additional simulation.
    """
    wires = set()
    cycles = set()
    for delay_result in result.by_delay.values():
        for record in delay_result.records:
            if record.num_errors > 0:
                wires.add(record.wire_index)
                cycles.add(record.cycle)
    return CoverageVector(
        structure=result.structure,
        wire_count=result.wire_count,
        covered_wires=frozenset(wires),
        covered_cycles=frozenset(cycles),
        sampled_wires=result.sampled_wires,
        sampled_cycles=len(result.sampled_cycles),
    )


def coverage_key(
    structure: str,
    clock_period: float,
    delay_fractions: Iterable[float],
    cycles: Iterable[int],
    wire_indices: Iterable[int],
) -> str:
    """Cache key naming one coverage vector's sampling identity.

    The verdict cache is already scoped to (netlist, program, margins), so
    the key only needs to distinguish the sampling plan: structure, clock,
    delay sweep, and the exact sampled cycles and wires.  Identical
    campaigns — including warm re-runs — produce identical keys, so
    persisting is idempotent.
    """
    body = json.dumps(
        [
            structure,
            round(float(clock_period), 6),
            sorted(set(float(d) for d in delay_fractions)),
            sorted(set(int(c) for c in cycles)),
            sorted(set(int(w) for w in wire_indices)),
        ],
        separators=(",", ":"),
    )
    digest = hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]
    return f"{structure}|{digest}"


def coverage_key_for_plan(plan, clock_period: float) -> str:
    """The :func:`coverage_key` of one campaign plan's sampled population."""
    delays = set()
    cycles = set()
    wires = set()
    for shard in plan.shards:
        delays.update(shard.delay_fractions)
        cycles.add(shard.cycle)
        wires.update(shard.wire_indices)
    return coverage_key(plan.structure, clock_period, delays, cycles, wires)


def union_coverage(vectors: Sequence[CoverageVector]) -> CoverageVector:
    """The union of a non-empty sequence of same-structure vectors."""
    if not vectors:
        raise ValueError("cannot union an empty set of coverage vectors")
    merged = vectors[0]
    for vector in vectors[1:]:
        merged = merged.union(vector)
    return merged


def select_workloads(
    vectors: Mapping[str, CoverageVector], count: int
) -> Tuple[List[str], List[int]]:
    """Greedy maximum-marginal-coverage selection of *count* workloads.

    *vectors* maps candidate name -> coverage vector; iteration order
    breaks ties (first candidate wins), so the selection is deterministic
    for an ordered mapping.  Returns ``(selected_names, marginal_gains)``
    where ``marginal_gains[i]`` is how many new wires selection step *i*
    added.  Selection continues past the point of zero gain (diversity
    exhausted) until *count* workloads are chosen or candidates run out —
    the gains list makes the saturation visible.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    remaining = list(vectors)
    covered: set = set()
    selected: List[str] = []
    gains: List[int] = []
    while remaining and len(selected) < count:
        best = None
        best_gain = -1
        for name in remaining:
            gain = vectors[name].marginal_wires(covered)
            if gain > best_gain:
                best, best_gain = name, gain
        selected.append(best)
        gains.append(best_gain)
        covered |= vectors[best].covered_wires
        remaining.remove(best)
    return selected, gains


@dataclass(frozen=True)
class WorkloadSelection:
    """The outcome of one coverage-directed workload selection.

    ``selected`` (with per-step ``gains``) is the greedy pick over
    ``candidates``; ``union`` its combined coverage; ``baseline`` the
    combined coverage of the first ``len(selected)`` candidates in
    submission order (i.e. sequential seeds) — the naive alternative the
    selection is measured against.
    """

    structure: str
    selected: Tuple[str, ...]
    gains: Tuple[int, ...]
    candidates: Tuple[str, ...]
    vectors: Mapping[str, CoverageVector] = field(compare=False)
    union: CoverageVector = field(compare=False)
    baseline: Optional[CoverageVector] = field(default=None, compare=False)

    def to_payload(self) -> Dict:
        payload: Dict = {
            "structure": self.structure,
            "selected": list(self.selected),
            "gains": list(self.gains),
            "candidates": list(self.candidates),
            "vectors": {
                name: vector.to_payload()
                for name, vector in self.vectors.items()
            },
            "union": self.union.to_payload(),
        }
        if self.baseline is not None:
            payload["baseline"] = self.baseline.to_payload()
        return payload
