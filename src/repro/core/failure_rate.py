"""Failure-rate estimation from DelayAVF (Section III-B).

"Analogous to AVF, to estimate the failure rate of a structure, DelayAVF can
be multiplied with the rate at which a given structure experiences a small
delay fault."  These helpers perform that bookkeeping in FIT (failures per
10⁹ device-hours), the unit reliability budgets are written in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping


@dataclass(frozen=True)
class FailureRateEstimate:
    """A structure's contribution to the system failure rate."""

    structure: str
    delay_avf: float
    raw_fault_fit: float  #: SDF arrival rate for the whole structure, in FIT

    @property
    def failure_fit(self) -> float:
        """Program-visible failures per 10⁹ hours (FIT)."""
        return self.delay_avf * self.raw_fault_fit


def structure_failure_fit(
    delay_avf: float, fit_per_wire: float, num_wires: int, structure: str = ""
) -> FailureRateEstimate:
    """Estimate a structure's failure FIT from a per-wire SDF arrival rate.

    Uniform per-wire arrival is the natural counterpart of the paper's
    random-location marginal-defect model (§IV-B); callers with better
    defect data can weight wires themselves and use
    :class:`FailureRateEstimate` directly.
    """
    if fit_per_wire < 0 or num_wires < 0:
        raise ValueError("fault rates and wire counts must be non-negative")
    if not 0.0 <= delay_avf <= 1.0:
        raise ValueError(f"DelayAVF must be in [0, 1], got {delay_avf}")
    return FailureRateEstimate(
        structure=structure,
        delay_avf=delay_avf,
        raw_fault_fit=fit_per_wire * num_wires,
    )


def rank_structures(
    estimates: Mapping[str, FailureRateEstimate]
) -> list:
    """Structures ordered by failure-FIT contribution (largest first).

    This is the paper's intended use: target protection where
    DelayAVF × fault rate — not raw size, not sAVF — says it pays most.
    """
    return sorted(
        estimates.values(), key=lambda e: e.failure_fit, reverse=True
    )
