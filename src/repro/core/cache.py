"""Persistent, content-addressed verdict cache for GroupACE outcomes.

GroupACE runs dominate campaign cost (each is a resumed full-program
simulation), yet their verdicts depend only on

- the netlist (which gates, DFFs, and ports exist and how they connect),
- the program (its image decides the golden behaviour), and
- the verdict-relevant campaign knobs (the DUE budget),

never on *which wire or delay* produced a state-error set.  So verdicts are
cached on disk under a content-addressed scope key: repeated benches, CLI
runs, and parallel workers all warm-start from the same store, and a stale
netlist or workload silently misses into a fresh scope instead of returning
wrong answers.

The store is one JSON file per scope (``verdicts-<scope16>.json``) holding a
metadata header and a flat verdict map.  :meth:`VerdictCache.flush` re-reads
the file and merges before an atomic replace, so concurrent workers of a
parallel campaign can share one cache directory without corrupting it (last
writer wins per key; verdicts are deterministic, so collisions agree).

The metadata header also records the workload's fault-free run length and an
observables digest, which lets :class:`repro.core.campaign.CampaignSession`
skip its probe pass on warm starts (see its docstring).

On top of the verdict map the store keeps a second, finer-grained table of
completed *injection records* keyed by (structure, cycle, wire index, delay,
ORACE flag, clock period).  A verdict hit still has to rebuild the cycle's
waveforms and re-derive the dynamically reachable set (the timing-aware event
sim) before it can ask for the verdict; a record hit skips all of that — a
fully warm shard never touches the event simulator at all, which is where
warm-restart campaign speedups actually come from.  Records are derived data
(every field is reproducible from the scope + key), so the same
last-writer-wins merge applies.

A third table marks *completed work shards* (:func:`shard_key`).  The
executors mark a shard complete only after every one of its records has been
put, so an interrupted campaign (Ctrl-C, an OOM-killed worker host) can
``resume``: shards found complete in the store are reassembled from the
record table without executing anything, and a shard whose completion mark
survived but whose records did not is simply re-run.

Every flush records a ``payload_sha256`` over the data body, so torn writes
and bit rot are *detected*, not just tolerated: a file that fails
verification (unparseable, truncated, or checksum-mismatched) is quarantined
to ``<name>.corrupt-<ts>`` with a stderr warning and a ``cache_quarantines``
telemetry tick, and the scope loads as cold — the campaign rebuilds it by
resimulation instead of crashing or silently reusing damaged verdicts.
``repro fsck`` (backed by :func:`verify_cache_dir`) audits a cache directory
offline.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import sys
import tempfile
import threading
import time
import warnings
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.core import tracing
from repro.core.group_ace import Outcome
from repro.testing import chaos

#: Bump when the on-disk layout or key derivation changes.
CACHE_FORMAT = 1

#: Keys of the envelope covered by ``payload_sha256`` (sorted, canonical).
_CHECKSUMMED_KEYS = ("meta", "records", "scope", "shards", "verdicts")


def compute_payload_sha256(payload: Dict[str, object]) -> str:
    """Checksum of a scope file's data body (not the envelope fields).

    Canonical form: the data keys in sorted order, compact separators — so
    the digest is stable across json serializers and key insertion order.
    """
    body = {key: payload.get(key) for key in _CHECKSUMMED_KEYS}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def quarantine_scope_file(path: Path) -> Optional[Path]:
    """Move a damaged scope file aside to ``<name>.corrupt-<ts>``.

    Returns the quarantine path, or ``None`` when the file vanished first
    (another process quarantined or replaced it — both fine).  The original
    name is freed so the next flush rebuilds a clean checksummed file by
    resimulation; the damaged bytes are preserved for post-mortems.
    """
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    base = f"{path.name}.corrupt-{stamp}-{os.getpid()}"
    for attempt in range(100):
        suffix = f"-{attempt}" if attempt else ""
        target = path.with_name(base + suffix)
        if target.exists():
            continue
        try:
            os.replace(path, target)
        except FileNotFoundError:
            return None
        except OSError:
            # Read-only directory etc.: leave it in place; loads keep
            # treating the scope as cold, which is safe (just slow).
            return None
        return target
    return None


def _sha256(*parts: str) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def netlist_signature(netlist) -> str:
    """Content hash of everything that can change simulated behaviour."""
    return _sha256(
        netlist.name,
        repr([int(kind) for kind in netlist.cell_kinds]),
        repr([tuple(inputs) for inputs in netlist.cell_inputs]),
        repr(list(netlist.cell_outputs)),
        repr([(d.index, d.q, d.d, d.init) for d in netlist.dffs]),
        repr(sorted((name, tuple(nets)) for name, nets in netlist.input_ports.items())),
        repr(sorted((name, tuple(nets)) for name, nets in netlist.output_ports.items())),
    )


def program_signature(program) -> str:
    """Content hash of a workload (name is informational; the image decides)."""
    return _sha256(
        program.name,
        str(program.entry),
        hashlib.sha256(program.image).hexdigest(),
    )


def observables_digest(observables: Iterable) -> str:
    return _sha256(repr(tuple(observables)))


def campaign_scope_key(netlist, program, config) -> str:
    """Scope key: netlist + program + the verdict-relevant config knobs.

    ``margin_cycles`` bounds the DUE budget and ``max_run_cycles`` bounds the
    golden run, so both participate; sampling knobs (wires, cycles, seeds,
    delays) deliberately do not — verdicts are reusable across campaigns.
    """
    return _sha256(
        f"format={CACHE_FORMAT}",
        netlist_signature(netlist),
        program_signature(program),
        f"margin={config.margin_cycles}",
        f"max_run={config.max_run_cycles}",
    )


def verdict_key(
    cycle: int, at_next_boundary: bool, overrides_items: Tuple[Tuple[int, int], ...]
) -> str:
    """Stable string key for one (checkpoint, boundary, error-set) verdict."""
    errors = ",".join(f"{dff}:{value}" for dff, value in overrides_items)
    return f"{cycle}|{int(at_next_boundary)}|{errors}"


def record_key(
    structure: str,
    cycle: int,
    wire_index: int,
    delay_fraction: float,
    with_orace: bool,
    clock_period: float,
) -> str:
    """Stable string key for one completed injection record.

    Wire indices are positions in ``system.structure_wires(structure)``, a
    deterministic enumeration of the netlist (which the scope key hashes), so
    they are stable across processes.  The clock period pins the timing view:
    the dynamically reachable set baked into a record depends on absolute
    delays, unlike the timing-agnostic verdicts above.
    """
    return (
        f"{structure}|{cycle}|{wire_index}|{delay_fraction!r}"
        f"|{int(bool(with_orace))}|{clock_period!r}"
    )


def shard_key(
    structure: str,
    cycle: int,
    wire_indices: Sequence[int],
    delay_fractions: Sequence[float],
    with_orace: bool,
    clock_period: float,
) -> str:
    """Stable content key marking one fully persisted work shard.

    Hashes the shard's full identity — every wire and delay it covers plus
    the timing/ORACE view its records were produced under — so a campaign
    re-planned with different sampling never mistakes an old shard for its
    own.
    """
    return _sha256(
        structure,
        str(cycle),
        ",".join(str(index) for index in wire_indices),
        ",".join(repr(delay) for delay in delay_fractions),
        str(int(bool(with_orace))),
        repr(clock_period),
    )


def record_to_payload(record) -> list:
    """Portable JSON form of an :class:`~repro.core.results.InjectionRecord`.

    Only the derived fields are stored; the identifying ones (wire index,
    cycle, delay) live in the key and are re-supplied on load.
    """
    return [
        int(record.statically_reachable),
        record.num_statically_reachable,
        record.num_errors,
        record.outcome.value,
        None if record.or_ace is None else int(record.or_ace),
    ]


def record_from_payload(payload, wire_index: int, cycle: int, delay_fraction: float):
    from repro.core.results import InjectionRecord

    reachable, num_static, num_errors, outcome, or_ace = payload
    return InjectionRecord(
        wire_index=wire_index,
        cycle=cycle,
        delay_fraction=delay_fraction,
        statically_reachable=bool(reachable),
        num_statically_reachable=num_static,
        num_errors=num_errors,
        outcome=Outcome(outcome),
        or_ace=None if or_ace is None else bool(or_ace),
    )


def _read_scope_payload(path: Path) -> Tuple[Dict[str, object], Optional[str]]:
    """``(payload, damage)`` for one scope file.

    A missing file is a cold scope: ``({}, None)``.  ``damage`` is a
    human-readable reason whenever the file exists but cannot be trusted —
    unreadable, unparseable (torn write), wrong shape, or a
    ``payload_sha256`` that no longer matches its body.  Files written
    before checksums existed (no ``payload_sha256`` field) still load; the
    next flush upgrades them.
    """
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return {}, None
    except OSError as exc:
        return {}, f"unreadable: {exc}"
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return {}, "unparseable JSON (torn or corrupted write)"
    if not isinstance(payload, dict):
        return {}, "not a JSON object"
    stored_sha = payload.get("payload_sha256")
    if stored_sha is not None and stored_sha != compute_payload_sha256(payload):
        return {}, "payload_sha256 mismatch (bit rot or partial overwrite)"
    return payload, None


def verify_scope_file(path) -> Tuple[str, str]:
    """Classify one ``verdicts-*.json`` without loading it into a cache.

    Returns ``(status, detail)`` with status one of:

    - ``"ok"``       — parseable, this schema, checksum verified.
    - ``"legacy"``   — valid but written before checksums existed.
    - ``"foreign"``  — a different schema version (loaders ignore it).
    - ``"corrupt"``  — torn, unparseable, or checksum-mismatched.
    """
    path = Path(path)
    payload, damage = _read_scope_payload(path)
    if damage is not None:
        return "corrupt", damage
    if not payload:
        if not path.exists():
            return "corrupt", "file vanished during verification"
        return "corrupt", "empty payload"
    stored_version = payload.get("schema_version", payload.get("format"))
    if stored_version != CACHE_FORMAT:
        return (
            "foreign",
            f"schema_version {stored_version!r} (this build reads {CACHE_FORMAT})",
        )
    counts = (
        f"{len(payload.get('verdicts', {}))} verdicts, "
        f"{len(payload.get('records', {}))} records, "
        f"{len(payload.get('shards', {}))} shards"
    )
    if payload.get("payload_sha256") is None:
        return "legacy", f"no payload_sha256 (pre-integrity file); {counts}"
    return "ok", counts


def verify_cache_dir(directory, quarantine: bool = False) -> Dict[str, list]:
    """Verify every scope file in *directory* (the ``repro fsck`` core).

    Returns ``{"ok" | "legacy" | "foreign" | "corrupt": [(path, detail)...],
    "quarantined": [(path, quarantine_path)...]}``.  With *quarantine* true,
    corrupt files are moved aside the same way a live load would move them.
    """
    report: Dict[str, list] = {
        "ok": [], "legacy": [], "foreign": [], "corrupt": [], "quarantined": [],
    }
    directory = Path(directory)
    if not directory.is_dir():
        return report
    for path in sorted(directory.glob("verdicts-*.json")):
        status, detail = verify_scope_file(path)
        report[status].append((str(path), detail))
        if status == "corrupt" and quarantine:
            target = quarantine_scope_file(path)
            if target is not None:
                report["quarantined"].append((str(path), str(target)))
    return report


@contextlib.contextmanager
def _flush_lock(path: Path):
    """Advisory inter-process lock serializing read-merge-write flushes.

    Without it, two workers flushing the same scope concurrently can both
    read the same base state and the second atomic replace silently drops
    the first writer's new entries.  Falls back to unlocked flushes where
    ``fcntl`` is unavailable.
    """
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX fallback
        yield
        return
    lock_path = path.with_name(path.name + ".lock")
    with open(lock_path, "a") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


class VerdictCache:
    """On-disk verdict store for one campaign scope."""

    def __init__(self, directory, scope_key: str):
        self.directory = Path(directory)
        self.scope_key = scope_key
        self.path = self.directory / f"verdicts-{scope_key[:16]}.json"
        self._verdicts: Dict[str, str] = {}
        self._records: Dict[str, list] = {}
        self._shards: Dict[str, int] = {}
        self._meta: Dict[str, object] = {}
        self._dirty = False
        self._calls_since_flush = 0
        self._last_flush = time.monotonic()
        # Intra-process guard: the campaign service runs concurrent jobs in
        # threads of one process, and two jobs sharing an engine share this
        # cache.  (Cross-process safety is the flock in :func:`_flush_lock`;
        # this lock makes in-memory mutation + flush safe within a process.)
        # Reentrant because flush() is called from guarded mutators' callers.
        self._lock = threading.RLock()
        #: Damaged scope files moved aside by this instance (telemetry feed).
        self.quarantines = 0
        #: Optional CampaignTelemetry sink; see :meth:`attach_telemetry`.
        self.telemetry = None
        self._load(self.path, replace=True)

    def attach_telemetry(self, telemetry) -> None:
        """Route quarantine events into *telemetry* (``cache_quarantines``).

        Quarantines that happened before attachment (the constructor's
        initial load) are folded in, so the counter is complete regardless
        of construction order.
        """
        with self._lock:
            self.telemetry = telemetry
            if telemetry is not None and self.quarantines:
                telemetry.incr("cache_quarantines", self.quarantines)

    def _note_quarantine(self, original: Path, target: Optional[Path]) -> None:
        self.quarantines += 1
        if self.telemetry is not None:
            self.telemetry.incr("cache_quarantines")
        where = f" (moved to {target.name})" if target is not None else ""
        print(
            f"repro: verdict cache file {original} failed integrity "
            f"verification; quarantined{where} and rebuilding by "
            f"resimulation",
            file=sys.stderr,
        )

    @classmethod
    def open(cls, directory, netlist, program, config) -> "VerdictCache":
        """Open (creating lazily) the cache scoped to this exact campaign."""
        return cls(directory, campaign_scope_key(netlist, program, config))

    # ------------------------------------------------------------------
    def _load(self, path: Path, replace: bool) -> None:
        payload, damage = _read_scope_payload(path)
        if damage is not None:
            # Detected corruption (torn write, bit rot, checksum mismatch):
            # move the damaged file aside and treat the scope as cold.  The
            # campaign resimulates instead of crashing or silently reusing
            # bytes that failed verification.
            target = quarantine_scope_file(path)
            self._note_quarantine(path, target)
            payload = {}
        stored_version = payload.get("schema_version", payload.get("format"))
        if payload and stored_version != CACHE_FORMAT:
            # A cache written by a different (usually newer) schema: its
            # entries may not mean what this code thinks.  Discard-and-warn
            # rather than raise — a stale cache must never kill a campaign
            # mid-flight; it just stops saving work.
            warnings.warn(
                f"verdict cache {path} has schema_version {stored_version!r} "
                f"but this build reads {CACHE_FORMAT}; ignoring its contents",
                RuntimeWarning,
                stacklevel=2,
            )
            payload = {}
        if payload.get("scope") != self.scope_key:
            payload = {}
        stored = payload.get("verdicts", {})
        stored_records = payload.get("records", {})
        stored_shards = payload.get("shards", {})
        if replace:
            self._verdicts = dict(stored)
            self._records = dict(stored_records)
            self._shards = dict(stored_shards)
            self._meta = dict(payload.get("meta", {}))
        else:
            # Merge-under: our in-memory entries win (they are newer but
            # deterministic, so any overlap agrees anyway).
            merged = dict(stored)
            merged.update(self._verdicts)
            self._verdicts = merged
            records = dict(stored_records)
            records.update(self._records)
            self._records = records
            shards = dict(stored_shards)
            shards.update(self._shards)
            self._shards = shards
            meta = dict(payload.get("meta", {}))
            stored_coverage = meta.get("coverage")
            meta.update(self._meta)
            if isinstance(stored_coverage, dict):
                # "coverage" is a nested table (key -> vector payload); a
                # shallow update would drop stored vectors our in-memory
                # table doesn't mention, so merge it entry-wise.
                coverage = dict(stored_coverage)
                ours = self._meta.get("coverage")
                if isinstance(ours, dict):
                    coverage.update(ours)
                meta["coverage"] = coverage
            self._meta = meta

    # ------------------------------------------------------------------
    def get_verdict(self, key: str) -> Optional[Outcome]:
        with self._lock:
            value = self._verdicts.get(key)
        return Outcome(value) if value is not None else None

    def put_verdict(self, key: str, outcome: Outcome) -> None:
        with self._lock:
            if self._verdicts.get(key) != outcome.value:
                self._verdicts[key] = outcome.value
                self._dirty = True

    def lookup(
        self,
        cycle: int,
        at_next_boundary: bool,
        overrides_items: Tuple[Tuple[int, int], ...],
    ) -> Optional[Outcome]:
        return self.get_verdict(verdict_key(cycle, at_next_boundary, overrides_items))

    def store(
        self,
        cycle: int,
        at_next_boundary: bool,
        overrides_items: Tuple[Tuple[int, int], ...],
        outcome: Outcome,
    ) -> None:
        self.put_verdict(verdict_key(cycle, at_next_boundary, overrides_items), outcome)

    def get_record(self, key: str) -> Optional[list]:
        with self._lock:
            return self._records.get(key)

    def put_record(self, key: str, payload: list) -> None:
        with self._lock:
            if self._records.get(key) != payload:
                self._records[key] = payload
                self._dirty = True

    def shard_complete(self, key: str) -> bool:
        """Whether the shard named by :func:`shard_key` has fully persisted."""
        with self._lock:
            return key in self._shards

    def mark_shard_complete(self, key: str) -> None:
        """Record that every injection record of one shard has been put.

        Call only after the shard's records are in the store; resume treats
        the mark as a promise that the record table can reassemble the shard
        (and falls back to re-execution if it cannot).
        """
        with self._lock:
            if key not in self._shards:
                self._shards[key] = 1
                self._dirty = True

    def __len__(self) -> int:
        return len(self._verdicts)

    # ------------------------------------------------------------------
    def workload_meta(self) -> Optional[Tuple[int, str]]:
        """``(total_cycles, observables_digest)`` of the fault-free run."""
        with self._lock:
            cycles = self._meta.get("total_cycles")
            digest = self._meta.get("observables_sha")
        if isinstance(cycles, int) and isinstance(digest, str):
            return cycles, digest
        return None

    def record_workload(self, total_cycles: int, observables: Iterable) -> None:
        digest = observables_digest(observables)
        with self._lock:
            if self.workload_meta() != (total_cycles, digest):
                self._meta["total_cycles"] = total_cycles
                self._meta["observables_sha"] = digest
                self._dirty = True

    def get_coverage(self, key: str) -> Optional[dict]:
        """The stored coverage-vector payload for *key*, if any.

        Coverage vectors live inside the checksummed ``meta`` table (under
        a ``"coverage"`` sub-dict) rather than as a new top-level payload
        key: the on-disk schema and its integrity envelope are unchanged,
        so caches written before coverage existed stay readable and vice
        versa.
        """
        with self._lock:
            table = self._meta.get("coverage")
            if isinstance(table, dict):
                value = table.get(key)
                if isinstance(value, dict):
                    return dict(value)
        return None

    def put_coverage(self, key: str, payload: dict) -> None:
        """Persist one coverage-vector payload under *key* (idempotent)."""
        with self._lock:
            table = self._meta.get("coverage")
            if not isinstance(table, dict):
                table = {}
                self._meta["coverage"] = table
            if table.get(key) != payload:
                table[key] = dict(payload)
                self._dirty = True

    # ------------------------------------------------------------------
    def flush_throttled(self, every_n: int = 8, max_seconds: float = 10.0) -> bool:
        """Flush only every *every_n* calls or once *max_seconds* have passed.

        Executors call this once per completed shard; a full flush is a
        read-merge-rewrite of the scope file under the inter-process lock, so
        doing it per shard serializes workers on disk I/O.  Throttling keeps
        the loss window bounded (at most *every_n* shards or *max_seconds* of
        work) while the guaranteed unconditional flushes — the engine's
        post-merge flush and the worker's exit hook — keep the store
        eventually complete.  Returns ``True`` when a flush happened.
        """
        with self._lock:
            self._calls_since_flush += 1
            if not self._dirty:
                return False
            due = (
                self._calls_since_flush >= max(1, int(every_n))
                or time.monotonic() - self._last_flush >= max_seconds
            )
            if not due:
                return False
            self.flush()
            return True

    def flush(self) -> None:
        """Merge with the on-disk state and atomically rewrite the file."""
        with self._lock:
            self._calls_since_flush = 0
            self._last_flush = time.monotonic()
            if not self._dirty:
                return
            self.directory.mkdir(parents=True, exist_ok=True)
            with tracing.span(
                "cache.flush", cat="cache",
                records=len(self._records), verdicts=len(self._verdicts),
            ), _flush_lock(self.path):
                self._load(self.path, replace=False)
                payload = {
                    "schema_version": CACHE_FORMAT,
                    "format": CACHE_FORMAT,  # legacy alias read by older builds
                    "scope": self.scope_key,
                    "meta": self._meta,
                    "verdicts": self._verdicts,
                    "records": self._records,
                    "shards": self._shards,
                }
                payload["payload_sha256"] = compute_payload_sha256(payload)
                fd, tmp_name = tempfile.mkstemp(
                    prefix=self.path.name, suffix=".tmp", dir=self.directory
                )
                try:
                    with os.fdopen(fd, "w") as handle:
                        json.dump(payload, handle)
                    chaos.fire("cache.flush", path=tmp_name)
                    os.replace(tmp_name, self.path)
                except BaseException:
                    try:
                        os.unlink(tmp_name)
                    except OSError:
                        pass
                    raise
            self._dirty = False
