"""ORACE, OrDelayAVF, and ACE interference / compounding (Section VII).

ORACE approximates GroupACE from *individual* state-element ACEness: a set S
is ORACE iff any member is individually ACE (Definition 5).  Replacing
GroupACE with ORACE in the DelayAVF computation yields **OrDelayAVF**
(Definition 6), which allows reuse of existing particle-strike fault
injection or ACE-analysis data.

The approximation fails exactly on the two confounding effects the paper
isolates:

- **ACE interference** — the set is ORACE but not GroupACE (the simultaneous
  errors cancel architecturally);
- **ACE compounding** — the set is GroupACE but not ORACE (no member matters
  alone; the paper's SEC-ECC register file is the canonical example, where
  any single stored-bit error is corrected but multi-bit errors escape).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.group_ace import GroupAceAnalyzer
from repro.sim.cyclesim import Checkpoint


@dataclass
class SetVerdict:
    """GroupACE vs ORACE verdicts for one dynamically reachable set."""

    group_ace: bool
    or_ace: bool

    @property
    def interference(self) -> bool:
        return self.or_ace and not self.group_ace

    @property
    def compounding(self) -> bool:
        return self.group_ace and not self.or_ace


class OraceAnalyzer:
    """Evaluates ORACE via cached single-state-element injections."""

    def __init__(self, group_ace: GroupAceAnalyzer):
        self.group_ace = group_ace
        #: (cycle, dff, value) -> individually ACE?
        self._single_cache: Dict[Tuple[int, int, int], bool] = {}

    def single_ace(self, checkpoint: Checkpoint, dff: int, value: int) -> bool:
        """Whether an error forcing *dff* to *value* alone is ACE."""
        key = (checkpoint.cycle, dff, value)
        cached = self._single_cache.get(key)
        if cached is None:
            outcome = self.group_ace.outcome_of_state_errors(
                checkpoint, {dff: value}
            )
            cached = outcome.is_failure
            self._single_cache[key] = cached
        return cached

    def or_ace(self, checkpoint: Checkpoint, overrides: Dict[int, int]) -> bool:
        """ORACE(S): any member individually ACE (Definition 5)."""
        return any(
            self.single_ace(checkpoint, dff, value)
            for dff, value in overrides.items()
        )

    def verdict(
        self, checkpoint: Checkpoint, overrides: Dict[int, int]
    ) -> SetVerdict:
        """Joint GroupACE/ORACE verdict for a dynamically reachable set."""
        group = self.group_ace.is_group_ace(checkpoint, overrides)
        # For singleton sets ORACE == GroupACE by construction; reuse it.
        if len(overrides) == 1:
            return SetVerdict(group_ace=group, or_ace=group)
        return SetVerdict(
            group_ace=group, or_ace=self.or_ace(checkpoint, overrides)
        )
