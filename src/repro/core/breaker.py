"""A minimal three-state circuit breaker for flapping dependencies.

The distributed coordinator (:mod:`repro.distrib.coordinator`) wraps each
remote fleet in one of these: repeated worker deaths or shard timeouts trip
the breaker, after which campaigns short-circuit straight to the in-process
serial path instead of paying dispatch-timeout-evict cycles against a fleet
that keeps failing.  After a cool-down the breaker lets exactly one
*half-open probe* through; a clean run closes it again, another failure
re-opens it for a fresh cool-down.

States and transitions (the classic Nygard state machine):

- ``closed``    — normal operation.  ``record_failure`` increments a
  consecutive-failure count; reaching ``failure_threshold`` trips to open.
  ``record_success`` resets the count.
- ``open``      — callers should skip the dependency (``allow`` is False)
  until ``reset_seconds`` have elapsed, then the next ``allow`` transitions
  to half-open and returns True (the probe admission).
- ``half_open`` — one probe is in flight.  ``record_success`` closes;
  ``record_failure`` re-opens immediately.

The breaker is thread-safe and clock-injectable (tests pass a fake
monotonic clock instead of sleeping through cool-downs).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Trip after *failure_threshold* consecutive failures; probe after
    *reset_seconds*."""

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_seconds: float = 30.0,
        clock: Optional[Callable[[], float]] = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.reset_seconds = float(reset_seconds)
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at: Optional[float] = None
        #: Lifetime tallies, mirrored into campaign telemetry by the owner.
        self.trips = 0
        self.probes = 0
        self.recoveries = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, resolving an elapsed open cool-down to probe-ready.

        Reported state is what a caller would experience: an open breaker
        whose cool-down has elapsed reads as ``half_open`` (the next
        ``allow`` admits a probe).
        """
        with self._lock:
            if self._state == OPEN and self._cooled_down():
                return HALF_OPEN
            return self._state

    def _cooled_down(self) -> bool:
        return (
            self._opened_at is not None
            and self._clock() - self._opened_at >= self.reset_seconds
        )

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether the caller may use the dependency right now.

        Closed: always.  Open: only once the cool-down elapsed, which
        atomically admits a single half-open probe.  Half-open: the probe
        is already out; everyone else is refused until it reports back.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN and self._cooled_down():
                self._state = HALF_OPEN
                self.probes += 1
                return True
            return False

    def record_success(self) -> bool:
        """Report a clean use.  Returns True when this closed a breaker."""
        with self._lock:
            recovered = self._state != CLOSED
            self._state = CLOSED
            self._failures = 0
            self._opened_at = None
            if recovered:
                self.recoveries += 1
            return recovered

    def record_failure(self) -> bool:
        """Report a failed use.  Returns True when this tripped the breaker.

        In half-open, one failure re-opens immediately (the probe showed
        the dependency is still sick); in closed, the consecutive-failure
        count must reach the threshold.
        """
        with self._lock:
            if self._state == HALF_OPEN:
                self._state = OPEN
                self._opened_at = self._clock()
                self._failures = 0
                self.trips += 1
                return True
            self._failures += 1
            if self._state == CLOSED and self._failures >= self.failure_threshold:
                self._state = OPEN
                self._opened_at = self._clock()
                self._failures = 0
                self.trips += 1
                return True
            return False

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict view for health endpoints and telemetry."""
        return {
            "state": self.state,
            "failure_threshold": self.failure_threshold,
            "reset_seconds": self.reset_seconds,
            "trips": self.trips,
            "probes": self.probes,
            "recoveries": self.recoveries,
        }
