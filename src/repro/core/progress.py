"""Live campaign progress: stderr ticker + throttled heartbeat file.

A multi-minute parallel campaign is silent between ``analyze()`` and its
result.  :class:`ProgressReporter` streams liveness from the executor's
completion loop: shards done/total, ETA extrapolated from the observed
per-shard rate, the record-cache hit rate, recovery-action counts (retries,
timeouts, pool rebuilds, serial fallbacks), and — during adaptive
refinement — the current CI half-width versus its target.

Two channels, both optional:

- **stderr** (``--progress``): a single ``\\r``-rewritten line on a TTY, or
  throttled full lines when piped, so CI logs stay readable.
- **heartbeat file** (derived from ``--metrics-out``): a small JSON document
  atomically rewritten at most every ``heartbeat_seconds``, so an external
  monitor (or a human with ``watch cat``) can follow a long run without
  attaching to the process.

The reporter is driven by the *coordinator* process only — workers report
implicitly through the telemetry deltas on each
:class:`repro.core.executor.ShardResult` — so no cross-process
synchronisation is needed beyond a thread lock.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from threading import Lock
from typing import Any, Dict, Optional


def _atomic_write_json(path: str, payload: Dict[str, Any]) -> None:
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=os.path.basename(path), suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class Heartbeat:
    """Throttled, atomically-replaced JSON status file for external monitors."""

    def __init__(self, path: str, min_interval: float = 2.0):
        self.path = path
        self.min_interval = max(0.0, float(min_interval))
        self._last_beat = 0.0

    def beat(self, payload: Dict[str, Any], force: bool = False) -> bool:
        """Write *payload* if the throttle window has elapsed (or *force*)."""
        now = time.monotonic()
        if not force and now - self._last_beat < self.min_interval:
            return False
        self._last_beat = now
        payload = dict(payload)
        payload["updated_unix"] = time.time()
        _atomic_write_json(self.path, payload)
        return True


class ProgressReporter:
    """Campaign liveness fan-out: stderr ticker and/or heartbeat file.

    Thread-safe (the executor's completion loop and an adaptive engine's
    refinement notifications may interleave).  Construction with neither
    channel enabled is cheap and every method no-ops, so call sites do not
    need to special-case "progress off".
    """

    #: Minimum seconds between full progress lines on a non-TTY stream.
    LINE_INTERVAL = 2.0

    def __init__(
        self,
        stream=None,
        enabled: bool = True,
        heartbeat: Optional[Heartbeat] = None,
        label: str = "campaign",
    ):
        self.stream = sys.stderr if stream is None else stream
        self.enabled = bool(enabled)
        self.heartbeat = heartbeat
        self.label = label
        self._lock = Lock()
        self._is_tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._started = 0.0
        self._last_line = 0.0
        self._wrote_ticker = False
        self.total = 0
        self.done = 0
        self.resumed = 0
        self.injections = 0
        self.cache_hits = 0
        self.notes: Dict[str, int] = {}
        self.refinement_round = 0
        self.half_width: Optional[float] = None
        self.target_half_width: Optional[float] = None
        self.state = "idle"
        self._sequence = 0

    # ------------------------------------------------------------------
    def start(self, total: int, resumed: int = 0) -> None:
        with self._lock:
            self._started = time.monotonic()
            self.total = int(total)
            self.resumed = int(resumed)
            # Resumed shards were reassembled from the cache — already done.
            self.done = int(resumed)
            self.state = "running"
            self._emit(force=True)

    def add_total(self, extra: int) -> None:
        """Grow the shard budget mid-run (adaptive refinement plans)."""
        with self._lock:
            self.total += int(extra)
            self._emit()

    def shard_done(self, telemetry_delta: Optional[Dict[str, Dict]] = None) -> None:
        """One shard finished; *telemetry_delta* feeds the cache-hit rate."""
        with self._lock:
            self.done += 1
            if telemetry_delta:
                counters = telemetry_delta.get("counters", {})
                self.injections += counters.get("injections", 0)
                self.cache_hits += counters.get("record_cache_hits", 0)
            self._emit()

    def note(self, event: str) -> None:
        """Count a recovery action (``retries``/``timeouts``/...)."""
        with self._lock:
            self.notes[event] = self.notes.get(event, 0) + 1
            self._emit(force=True)

    def refinement(self, round_index: int, half_width: float, target: float) -> None:
        with self._lock:
            self.refinement_round = round_index
            self.half_width = half_width
            self.target_half_width = target
            self._emit(force=True)

    def set_half_width(self, half_width: Optional[float]) -> None:
        with self._lock:
            self.half_width = half_width

    def finish(self, state: str = "done") -> None:
        with self._lock:
            self.state = state
            self._emit(force=True)
            if self.enabled and self._is_tty and self._wrote_ticker:
                self.stream.write("\n")
                self.stream.flush()

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The heartbeat payload — also the service's progress wire format.

        ``sequence`` increments on every snapshot, so a poller (the service's
        job-status endpoint, a heartbeat-file watcher) can tell a fresh
        snapshot from a re-read of the same one even when the visible
        counters have not moved.
        """
        self._sequence += 1
        elapsed = time.monotonic() - self._started if self._started else 0.0
        payload: Dict[str, Any] = {
            "sequence": self._sequence,
            "label": self.label,
            "state": self.state,
            "shards_done": self.done,
            "shards_total": self.total,
            "shards_resumed": self.resumed,
            "elapsed_seconds": round(elapsed, 3),
            "eta_seconds": self._eta(elapsed),
            "cache_hit_rate": self._hit_rate(),
            "notes": dict(self.notes),
        }
        if self.refinement_round:
            payload["refinement_round"] = self.refinement_round
        if self.half_width is not None:
            payload["ci_half_width"] = self.half_width
        if self.target_half_width is not None:
            payload["target_half_width"] = self.target_half_width
        return payload

    def _eta(self, elapsed: float) -> Optional[float]:
        if self.done <= 0 or self.total <= 0 or self.done >= self.total:
            return None
        return round(elapsed / self.done * (self.total - self.done), 3)

    def _hit_rate(self) -> Optional[float]:
        seen = self.injections + self.cache_hits
        if seen <= 0:
            return None
        return round(self.cache_hits / seen, 4)

    def _format_line(self) -> str:
        parts = [f"[{self.label}] {self.done}/{self.total} shards"]
        elapsed = time.monotonic() - self._started if self._started else 0.0
        eta = self._eta(elapsed)
        if eta is not None:
            parts.append(f"eta {eta:.0f}s")
        hit_rate = self._hit_rate()
        if hit_rate is not None:
            parts.append(f"cache {hit_rate * 100:.0f}%")
        if self.resumed:
            parts.append(f"resumed {self.resumed}")
        for event in sorted(self.notes):
            parts.append(f"{event} {self.notes[event]}")
        if self.half_width is not None:
            target = (
                f"/{self.target_half_width:.4f}"
                if self.target_half_width is not None
                else ""
            )
            parts.append(f"ci ±{self.half_width:.4f}{target}")
        if self.state not in ("running", "idle"):
            parts.append(self.state)
        return " ".join(parts)

    def _emit(self, force: bool = False) -> None:
        if self.heartbeat is not None:
            self.heartbeat.beat(self.snapshot(), force=force)
        if not self.enabled:
            return
        now = time.monotonic()
        if self._is_tty:
            self.stream.write("\r\x1b[K" + self._format_line())
            self.stream.flush()
            self._wrote_ticker = True
        elif force or now - self._last_line >= self.LINE_INTERVAL:
            self._last_line = now
            self.stream.write(self._format_line() + "\n")
            self.stream.flush()
