"""Campaign metrics export: Prometheus textfiles and JSON snapshots.

``--metrics-out PATH`` writes one machine-readable snapshot of the
campaign's :class:`repro.core.telemetry.CampaignTelemetry` when the run
finishes.  Two formats, selected by extension:

- ``*.json`` — the telemetry snapshot plus identifying labels and health
  flags, for scripting.
- anything else — Prometheus **textfile-collector** exposition format
  (``node_exporter --collector.textfile.directory``), three metric families
  keyed by a ``name`` label so new counters/phases never change the schema:

  - ``repro_campaign_counter{name="injections",...}``
  - ``repro_campaign_gauge{name="ci_half_width",...}``
  - ``repro_campaign_phase_seconds{name="execute",kind="wall"|"cpu",...}``

The ``kind`` label carries the wall-vs-cumulative distinction the telemetry
layer tracks (see :mod:`repro.core.telemetry`): ``wall`` is coordinator
wall-clock, ``cpu`` is the cross-worker cumulative sum.

Writes are atomic (temp file + ``os.replace``) so a scrape never reads a
half-written file.  During execution a throttled heartbeat JSON
(``PATH + ".heartbeat"``) is maintained by
:class:`repro.core.progress.Heartbeat`.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Mapping, Optional

PROMETHEUS_PREFIX = "repro_campaign"


def _atomic_write(path: str, text: str) -> None:
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=os.path.basename(path), suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _escape_label(value: Any) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_block(labels: Mapping[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def render_prometheus_sections(sections) -> str:
    """One exposition document spanning several labeled telemetry slices.

    *sections* is an iterable of ``(telemetry, labels)`` pairs — e.g. the
    campaign service's per-job telemetry plus its service-level counters.
    Samples are grouped per metric family (the text format requires each
    family's lines to be contiguous), with one HELP/TYPE header each, so
    the result is valid for a real Prometheus scrape.
    """
    counter_lines = []
    gauge_lines = []
    phase_lines = []
    for telemetry, labels in sections:
        labels = dict(labels or {})
        for name in sorted(telemetry.counters):
            block = _label_block({**labels, "name": name})
            counter_lines.append(
                f"{PROMETHEUS_PREFIX}_counter{block} {telemetry.counters[name]}"
            )
        for name in sorted(telemetry.gauges):
            block = _label_block({**labels, "name": name})
            gauge_lines.append(
                f"{PROMETHEUS_PREFIX}_gauge{block} {telemetry.gauges[name]}"
            )
        wall = getattr(telemetry, "phase_wall_seconds", {}) or {}
        for name in sorted(telemetry.phase_seconds):
            block = _label_block({**labels, "name": name, "kind": "cpu"})
            phase_lines.append(
                f"{PROMETHEUS_PREFIX}_phase_seconds{block} "
                f"{telemetry.phase_seconds[name]:.6f}"
            )
        for name in sorted(wall):
            block = _label_block({**labels, "name": name, "kind": "wall"})
            phase_lines.append(
                f"{PROMETHEUS_PREFIX}_phase_seconds{block} {wall[name]:.6f}"
            )
    lines = [
        f"# HELP {PROMETHEUS_PREFIX}_counter Campaign event counters.",
        f"# TYPE {PROMETHEUS_PREFIX}_counter counter",
        *counter_lines,
        f"# HELP {PROMETHEUS_PREFIX}_gauge Campaign point-in-time levels.",
        f"# TYPE {PROMETHEUS_PREFIX}_gauge gauge",
        *gauge_lines,
        f"# HELP {PROMETHEUS_PREFIX}_phase_seconds Per-phase time; "
        'kind="wall" is coordinator wall-clock, kind="cpu" sums every worker.',
        f"# TYPE {PROMETHEUS_PREFIX}_phase_seconds gauge",
        *phase_lines,
    ]
    return "\n".join(lines) + "\n"


def render_prometheus(
    telemetry, labels: Optional[Mapping[str, Any]] = None
) -> str:
    """The telemetry snapshot in Prometheus exposition format."""
    return render_prometheus_sections([(telemetry, labels)])


def metrics_payload(
    telemetry,
    labels: Optional[Mapping[str, Any]] = None,
    extra: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """The JSON-format metrics document."""
    payload: Dict[str, Any] = {
        "labels": dict(labels or {}),
        "counters": dict(telemetry.counters),
        "gauges": dict(telemetry.gauges),
        "phase_seconds": dict(telemetry.phase_seconds),
        "phase_wall_seconds": dict(
            getattr(telemetry, "phase_wall_seconds", {}) or {}
        ),
    }
    if extra:
        payload.update(dict(extra))
    return payload


def write_metrics(
    path: str,
    telemetry,
    labels: Optional[Mapping[str, Any]] = None,
    extra: Optional[Mapping[str, Any]] = None,
) -> None:
    """Write the campaign metrics snapshot to *path* (format by extension)."""
    if str(path).endswith(".json"):
        _atomic_write(
            path,
            json.dumps(
                metrics_payload(telemetry, labels, extra), indent=2, sort_keys=True
            )
            + "\n",
        )
    else:
        _atomic_write(path, render_prometheus(telemetry, labels))


def heartbeat_path(metrics_out: str) -> str:
    """Where the in-flight heartbeat for a ``--metrics-out`` target lives."""
    return str(metrics_out) + ".heartbeat"
