"""GroupACE (Definition 4) — the timing-agnostic step.

A set of state elements S is *GroupACE* in cycle i+1 if simultaneously
erroneous values in all of them produce a program-visible failure.  This is
decided by resuming a zero-delay simulation from a checkpoint, overwriting
the erroneous latches, running to completion, and comparing program-visible
output against the golden run.

Program-visible failures are classified as in the paper:

- **SDC** — the program produces different output (or a different exit code),
- **DUE** — the program traps or fails to halt within the cycle budget,
- **MASKED** — identical program-visible output (architecturally correct
  execution; differing *timing* alone is not a failure).

Runs exit early when the full system state (DFFs, in-flight interface
values, memory) reconverges with the golden run's per-cycle fingerprints —
the future is then provably identical, so only the output produced *so far*
needs comparing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.telemetry import CampaignTelemetry
from repro.isa.assembler import Program
from repro.sim.cyclesim import Checkpoint, CycleSimulator, RunResult
from repro.sim.packed import MAX_LANES, PackedCycleSimulator


class Outcome(enum.Enum):
    """Program-level outcome of one injection."""

    MASKED = "masked"
    SDC = "sdc"
    DUE = "due"

    @property
    def is_failure(self) -> bool:
        """Whether this outcome is a program-visible failure."""
        return self is not Outcome.MASKED


@dataclass
class InjectionStats:
    """Bookkeeping for how injected runs terminate (performance insight)."""

    runs: int = 0
    converged: int = 0
    ran_to_halt: int = 0
    timed_out: int = 0
    cycles_simulated: int = 0


class GroupAceAnalyzer:
    """Decides GroupACE-ness of state-element error sets for one workload."""

    def __init__(
        self,
        system,
        program: Program,
        golden: RunResult,
        margin_cycles: int = 3000,
        verdict_cache=None,
        telemetry: Optional[CampaignTelemetry] = None,
    ):
        if not golden.fingerprints:
            raise ValueError("golden run must be recorded with fingerprints")
        self.system = system
        self.program = program
        self.golden = golden
        self.margin_cycles = margin_cycles
        self.sim: CycleSimulator = system.simulator()
        self.stats = InjectionStats()
        #: optional persistent store (:class:`repro.core.cache.VerdictCache`)
        self.verdict_cache = verdict_cache
        self.telemetry = telemetry if telemetry is not None else CampaignTelemetry()
        self._cache: Dict[Tuple, Outcome] = {}
        self._packed: PackedCycleSimulator = PackedCycleSimulator(
            self.sim.netlist, self.sim.plan
        )

    # ------------------------------------------------------------------
    def outcome_of_state_errors(
        self,
        checkpoint: Checkpoint,
        overrides: Dict[int, int],
        at_next_boundary: bool = True,
    ) -> Outcome:
        """Outcome of forcing *overrides* (DFF index → value) into the state.

        With ``at_next_boundary=True`` (the delay-fault case) the checkpoint
        cycle is first re-simulated fault-free and the erroneous values are
        applied at the following clock edge — where an SDF in that cycle
        would deposit them.  With ``False`` (the particle-strike case) the
        overrides are applied directly at the checkpoint boundary.

        Resolution order: in-memory cache, then the persistent verdict cache
        (if configured), then an actual injected run — whose verdict is
        written back to both.
        """
        if not overrides:
            return Outcome.MASKED
        items = tuple(sorted(overrides.items()))
        key = (checkpoint.cycle, at_next_boundary, items)
        cached = self._cache.get(key)
        if cached is not None:
            self.telemetry.incr("group_ace_cache_hits")
            return cached
        if self.verdict_cache is not None:
            persisted = self.verdict_cache.lookup(
                checkpoint.cycle, at_next_boundary, items
            )
            if persisted is not None:
                self.telemetry.incr("verdict_cache_hits")
                self._cache[key] = persisted
                return persisted
        outcome = self._run_injected(checkpoint, overrides, at_next_boundary)
        self.telemetry.incr("group_ace_runs")
        self._cache[key] = outcome
        if self.verdict_cache is not None:
            self.verdict_cache.store(
                checkpoint.cycle, at_next_boundary, items, outcome
            )
        return outcome

    def is_group_ace(
        self, checkpoint: Checkpoint, overrides: Dict[int, int]
    ) -> bool:
        """GroupACE(S, i+1) for the dynamically reachable set *overrides*."""
        return self.outcome_of_state_errors(checkpoint, overrides).is_failure

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    # ------------------------------------------------------------------
    def prefetch(
        self,
        checkpoint: Checkpoint,
        sets: Sequence[Dict[int, int]],
        at_next_boundary: bool = True,
        lanes: int = MAX_LANES,
    ) -> None:
        """Batch-resolve many error sets into the cache (lane-parallel).

        Deduplicates against the cache and within *sets*, then runs the
        remaining unique injections in groups of up to *lanes* on the packed
        bit-plane simulator.  Subsequent :meth:`outcome_of_state_errors`
        calls for these sets are cache hits, so callers can keep using the
        scalar API unchanged.

        Raises ``ValueError`` for a lane width outside ``1..MAX_LANES`` —
        :class:`repro.core.campaign.CampaignConfig` validates user input
        before it gets here, so an out-of-range value is a programming
        error, not something to silently clamp.
        """
        self.prefetch_spanning(
            [(checkpoint, overrides) for overrides in sets],
            at_next_boundary=at_next_boundary,
            lanes=lanes,
        )

    def prefetch_spanning(
        self,
        items: Sequence[Tuple[Checkpoint, Dict[int, int]]],
        at_next_boundary: bool = True,
        lanes: int = MAX_LANES,
    ) -> None:
        """Batch-resolve error sets spanning *different* checkpoints.

        The lane dimension packs across the whole campaign, not just within
        one cycle: zero-delay simulation is Markovian, so lanes starting at
        different checkpoints (each with its own environment, inputs, and
        cycle counter) share one packed word.  This is what fills 64-wide
        words when any single cycle only contributes a handful of unique
        error sets.  Deduplication, verdict-cache flow, and outcomes are
        identical to per-checkpoint :meth:`prefetch`.  (For packing across
        *different analyzers* — several workloads sharing one netlist — see
        :func:`prefetch_spanning_multi`.)
        """
        prefetch_spanning_multi(
            [(self, items)], at_next_boundary=at_next_boundary, lanes=lanes
        )

    def _dedup_items(
        self,
        items: Sequence[Tuple[Checkpoint, Dict[int, int]]],
        at_next_boundary: bool,
    ) -> List["_LaneTask"]:
        """Filter *items* against the caches; return unresolved lane tasks."""
        unique: List[_LaneTask] = []
        seen = set()
        for checkpoint, overrides in items:
            if not overrides:
                continue
            key_items = tuple(sorted(overrides.items()))
            key = (checkpoint.cycle, at_next_boundary, key_items)
            if key in self._cache or key in seen:
                continue
            if self.verdict_cache is not None:
                persisted = self.verdict_cache.lookup(
                    checkpoint.cycle, at_next_boundary, key_items
                )
                if persisted is not None:
                    self.telemetry.incr("verdict_cache_hits")
                    self._cache[key] = persisted
                    continue
            seen.add(key)
            unique.append(_LaneTask(self, key, checkpoint, dict(overrides)))
        return unique

    def _store_outcome(
        self, task: "_LaneTask", outcome: Outcome, at_next_boundary: bool
    ) -> None:
        self._cache[task.key] = outcome
        if self.verdict_cache is not None:
            self.verdict_cache.store(
                task.key[0], at_next_boundary, task.key[2], outcome
            )

    def _run_injected_batch(
        self,
        lane_items: Sequence[Tuple[Checkpoint, Dict[int, int]]],
        at_next_boundary: bool,
    ) -> List[Outcome]:
        """Run up to :data:`MAX_LANES` injections of this workload at once."""
        return _run_lane_tasks(
            [
                _LaneTask(self, None, checkpoint, overrides)
                for checkpoint, overrides in lane_items
            ],
            at_next_boundary,
        )

    # ------------------------------------------------------------------
    def _run_injected(
        self,
        checkpoint: Checkpoint,
        overrides: Dict[int, int],
        at_next_boundary: bool,
    ) -> Outcome:
        sim = self.sim
        env = self.system.make_env(self.program)
        sim.restore(checkpoint, env)
        if at_next_boundary:
            sim.step()
        sim.override_dffs(overrides)
        # If the forced values all equal the current latched state, the
        # "error" is not an error at all (can happen for particle-strike
        # style injections given as absolute values).
        budget = self.golden.cycles + self.margin_cycles
        golden_fps = self.golden.fingerprints
        golden_obs = self.golden.observables
        self.stats.runs += 1
        start_cycle = sim.cycle
        while True:
            cycle = sim.cycle
            if cycle < len(golden_fps) and sim.fingerprint() == golden_fps[cycle]:
                self.stats.converged += 1
                self.stats.cycles_simulated += sim.cycle - start_cycle
                produced = env.observables()
                if produced == golden_obs[: len(produced)]:
                    return Outcome.MASKED
                return Outcome.SDC
            if cycle >= budget:
                self.stats.timed_out += 1
                self.stats.cycles_simulated += sim.cycle - start_cycle
                return Outcome.DUE
            sim.step()
            if env.halted():
                break
        self.stats.ran_to_halt += 1
        self.stats.cycles_simulated += sim.cycle - start_cycle
        produced = env.observables()
        if produced == golden_obs:
            return Outcome.MASKED
        if any(event and event[0] == "trap" for event in produced):
            return Outcome.DUE
        return Outcome.SDC


@dataclass
class _LaneTask:
    """One unresolved injection: its analyzer, cache key, and inputs."""

    analyzer: GroupAceAnalyzer
    key: Optional[Tuple]
    checkpoint: Checkpoint
    overrides: Dict[int, int]


def prefetch_spanning_multi(
    groups: Sequence[
        Tuple[GroupAceAnalyzer, Sequence[Tuple[Checkpoint, Dict[int, int]]]]
    ],
    at_next_boundary: bool = True,
    lanes: int = MAX_LANES,
) -> None:
    """Batch-resolve error sets spanning different *analyzers*.

    The widest packing: analyzers for different workloads (programs) share
    one netlist — everything program-specific lives in the per-lane
    environment — so their injected runs pack into the same 64-lane words.
    Each lane converges against the golden fingerprints, budget, and
    observables of *its own* workload; deduplication, verdict-cache flow,
    and outcomes per analyzer are identical to :meth:`prefetch_spanning`.

    Analyzers whose netlist differs from the first group's (e.g. an ECC
    variant among plain ones) are resolved in their own batches rather than
    rejected.  Batch-level telemetry (``lane_batches``/``lane_slots``) is
    attributed to the first analyzer of each batch; per-lane counters go to
    each lane's own analyzer.
    """
    lanes = int(lanes)
    if not 1 <= lanes <= MAX_LANES:
        raise ValueError(f"lanes must be in 1..{MAX_LANES}, got {lanes}")
    tasks: List[_LaneTask] = []
    for analyzer, items in groups:
        tasks.extend(analyzer._dedup_items(items, at_next_boundary))
    # Partition by netlist identity: lanes can only share a packed word when
    # they share the value-array geometry.
    by_netlist: Dict[int, List[_LaneTask]] = {}
    for task in tasks:
        by_netlist.setdefault(id(task.analyzer.sim.netlist), []).append(task)
    for netlist_tasks in by_netlist.values():
        for start in range(0, len(netlist_tasks), lanes):
            chunk = netlist_tasks[start : start + lanes]
            outcomes = _run_lane_tasks(chunk, at_next_boundary)
            owner = chunk[0].analyzer.telemetry
            owner.incr("lane_batches")
            owner.incr("lane_slots", lanes)
            for task, outcome in zip(chunk, outcomes):
                task.analyzer.telemetry.incr("lanes_filled")
                task.analyzer.telemetry.incr("group_ace_runs")
                task.analyzer._store_outcome(task, outcome, at_next_boundary)


def _run_lane_tasks(
    tasks: Sequence[_LaneTask], at_next_boundary: bool
) -> List[Outcome]:
    """Run up to :data:`MAX_LANES` injections simultaneously.

    Bit-exact with :meth:`GroupAceAnalyzer._run_injected` per lane: the same
    fingerprint convergence checks, halt handling, and DUE budget are
    applied at the same (per-lane absolute) cycle boundaries — each lane
    compares against the golden fingerprints and observables of its own
    analyzer's workload and burns that analyzer's DUE budget from its own
    start cycle.
    """
    count = len(tasks)
    psim = tasks[0].analyzer._packed
    envs = [
        task.analyzer.system.make_env(task.analyzer.program) for task in tasks
    ]
    psim.load_lanes(
        [(task.checkpoint, env) for task, env in zip(tasks, envs)]
    )
    if at_next_boundary:
        psim.step()
    for lane, task in enumerate(tasks):
        psim.override_lane_dffs(lane, task.overrides)
    # Per-lane convergence context: each lane resolves against its own
    # workload's golden run.
    golden_fps = [task.analyzer.golden.fingerprints for task in tasks]
    golden_obs = [task.analyzer.golden.observables for task in tasks]
    budgets = [
        task.analyzer.golden.cycles + task.analyzer.margin_cycles
        for task in tasks
    ]
    stats = [task.analyzer.stats for task in tasks]
    for s in stats:
        s.runs += 1
    steps_taken = 0
    outcomes: List[Outcome] = [Outcome.MASKED] * count
    unresolved = set(range(count))
    # Loop detection for the post-golden margin tail: past the golden
    # run's end a lane can only halt or burn the DUE budget.  The system
    # (DFFs + inputs + environment) is deterministic and closed, so a
    # lane that revisits a full state it has already been in can never
    # halt — it is provably DUE right now, no need to simulate the rest
    # of the margin.  Hashes gate an exact full-state comparison, so a
    # hash collision can never misclassify a lane.
    seen_states: Dict[int, Dict[int, Tuple]] = {}

    def resolve(lane: int, outcome: Outcome) -> None:
        outcomes[lane] = outcome
        unresolved.discard(lane)
        psim.retire_lane(lane)
        seen_states.pop(lane, None)

    while unresolved:
        for lane in sorted(unresolved):
            cycle = psim.lane_cycles[lane]
            fps = golden_fps[lane]
            if cycle < len(fps):
                if psim.lane_fingerprint(lane) == fps[cycle]:
                    produced = envs[lane].observables()
                    stats[lane].converged += 1
                    resolve(
                        lane,
                        Outcome.MASKED
                        if produced == golden_obs[lane][: len(produced)]
                        else Outcome.SDC,
                    )
            elif cycle >= budgets[lane]:
                stats[lane].timed_out += 1
                resolve(lane, Outcome.DUE)
            else:
                state = (
                    psim.lane_dff_values(lane).tobytes(),
                    tuple(sorted(psim.lane_inputs[lane].items())),
                    envs[lane].fingerprint(),
                )
                lane_seen = seen_states.setdefault(lane, {})
                previous = lane_seen.setdefault(hash(state), state)
                if previous is not state and previous == state:
                    stats[lane].timed_out += 1
                    resolve(lane, Outcome.DUE)
        if not unresolved:
            break
        psim.step()
        steps_taken += 1
        for lane in sorted(unresolved):
            if envs[lane].halted():
                produced = envs[lane].observables()
                if produced == golden_obs[lane]:
                    outcome = Outcome.MASKED
                elif any(e and e[0] == "trap" for e in produced):
                    outcome = Outcome.DUE
                else:
                    outcome = Outcome.SDC
                stats[lane].ran_to_halt += 1
                resolve(lane, outcome)
    tasks[0].analyzer.stats.cycles_simulated += steps_taken
    return outcomes
