"""GroupACE (Definition 4) — the timing-agnostic step.

A set of state elements S is *GroupACE* in cycle i+1 if simultaneously
erroneous values in all of them produce a program-visible failure.  This is
decided by resuming a zero-delay simulation from a checkpoint, overwriting
the erroneous latches, running to completion, and comparing program-visible
output against the golden run.

Program-visible failures are classified as in the paper:

- **SDC** — the program produces different output (or a different exit code),
- **DUE** — the program traps or fails to halt within the cycle budget,
- **MASKED** — identical program-visible output (architecturally correct
  execution; differing *timing* alone is not a failure).

Runs exit early when the full system state (DFFs, in-flight interface
values, memory) reconverges with the golden run's per-cycle fingerprints —
the future is then provably identical, so only the output produced *so far*
needs comparing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.telemetry import CampaignTelemetry
from repro.isa.assembler import Program
from repro.sim.cyclesim import Checkpoint, CycleSimulator, RunResult
from repro.sim.packed import MAX_LANES, PackedCycleSimulator


class Outcome(enum.Enum):
    """Program-level outcome of one injection."""

    MASKED = "masked"
    SDC = "sdc"
    DUE = "due"

    @property
    def is_failure(self) -> bool:
        """Whether this outcome is a program-visible failure."""
        return self is not Outcome.MASKED


@dataclass
class InjectionStats:
    """Bookkeeping for how injected runs terminate (performance insight)."""

    runs: int = 0
    converged: int = 0
    ran_to_halt: int = 0
    timed_out: int = 0
    cycles_simulated: int = 0


class GroupAceAnalyzer:
    """Decides GroupACE-ness of state-element error sets for one workload."""

    def __init__(
        self,
        system,
        program: Program,
        golden: RunResult,
        margin_cycles: int = 3000,
        verdict_cache=None,
        telemetry: Optional[CampaignTelemetry] = None,
    ):
        if not golden.fingerprints:
            raise ValueError("golden run must be recorded with fingerprints")
        self.system = system
        self.program = program
        self.golden = golden
        self.margin_cycles = margin_cycles
        self.sim: CycleSimulator = system.simulator()
        self.stats = InjectionStats()
        #: optional persistent store (:class:`repro.core.cache.VerdictCache`)
        self.verdict_cache = verdict_cache
        self.telemetry = telemetry if telemetry is not None else CampaignTelemetry()
        self._cache: Dict[Tuple, Outcome] = {}
        self._packed: PackedCycleSimulator = PackedCycleSimulator(
            self.sim.netlist, self.sim.plan
        )

    # ------------------------------------------------------------------
    def outcome_of_state_errors(
        self,
        checkpoint: Checkpoint,
        overrides: Dict[int, int],
        at_next_boundary: bool = True,
    ) -> Outcome:
        """Outcome of forcing *overrides* (DFF index → value) into the state.

        With ``at_next_boundary=True`` (the delay-fault case) the checkpoint
        cycle is first re-simulated fault-free and the erroneous values are
        applied at the following clock edge — where an SDF in that cycle
        would deposit them.  With ``False`` (the particle-strike case) the
        overrides are applied directly at the checkpoint boundary.

        Resolution order: in-memory cache, then the persistent verdict cache
        (if configured), then an actual injected run — whose verdict is
        written back to both.
        """
        if not overrides:
            return Outcome.MASKED
        items = tuple(sorted(overrides.items()))
        key = (checkpoint.cycle, at_next_boundary, items)
        cached = self._cache.get(key)
        if cached is not None:
            self.telemetry.incr("group_ace_cache_hits")
            return cached
        if self.verdict_cache is not None:
            persisted = self.verdict_cache.lookup(
                checkpoint.cycle, at_next_boundary, items
            )
            if persisted is not None:
                self.telemetry.incr("verdict_cache_hits")
                self._cache[key] = persisted
                return persisted
        outcome = self._run_injected(checkpoint, overrides, at_next_boundary)
        self.telemetry.incr("group_ace_runs")
        self._cache[key] = outcome
        if self.verdict_cache is not None:
            self.verdict_cache.store(
                checkpoint.cycle, at_next_boundary, items, outcome
            )
        return outcome

    def is_group_ace(
        self, checkpoint: Checkpoint, overrides: Dict[int, int]
    ) -> bool:
        """GroupACE(S, i+1) for the dynamically reachable set *overrides*."""
        return self.outcome_of_state_errors(checkpoint, overrides).is_failure

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    # ------------------------------------------------------------------
    def prefetch(
        self,
        checkpoint: Checkpoint,
        sets: Sequence[Dict[int, int]],
        at_next_boundary: bool = True,
        lanes: int = MAX_LANES,
    ) -> None:
        """Batch-resolve many error sets into the cache (lane-parallel).

        Deduplicates against the cache and within *sets*, then runs the
        remaining unique injections in groups of up to *lanes* on the packed
        bit-plane simulator.  Subsequent :meth:`outcome_of_state_errors`
        calls for these sets are cache hits, so callers can keep using the
        scalar API unchanged.
        """
        lanes = max(1, min(int(lanes), MAX_LANES))
        unique: List[Tuple[Tuple, Dict[int, int]]] = []
        seen = set()
        for overrides in sets:
            if not overrides:
                continue
            items = tuple(sorted(overrides.items()))
            key = (checkpoint.cycle, at_next_boundary, items)
            if key in self._cache or key in seen:
                continue
            if self.verdict_cache is not None:
                persisted = self.verdict_cache.lookup(
                    checkpoint.cycle, at_next_boundary, items
                )
                if persisted is not None:
                    self.telemetry.incr("verdict_cache_hits")
                    self._cache[key] = persisted
                    continue
            seen.add(key)
            unique.append((key, dict(overrides)))
        for start in range(0, len(unique), lanes):
            chunk = unique[start : start + lanes]
            outcomes = self._run_injected_batch(
                checkpoint, [overrides for _, overrides in chunk],
                at_next_boundary,
            )
            self.telemetry.incr("lane_batches")
            self.telemetry.incr("lanes_filled", len(chunk))
            self.telemetry.incr("group_ace_runs", len(chunk))
            for (key, _), outcome in zip(chunk, outcomes):
                self._cache[key] = outcome
                if self.verdict_cache is not None:
                    self.verdict_cache.store(
                        checkpoint.cycle, at_next_boundary, key[2], outcome
                    )

    def _run_injected_batch(
        self,
        checkpoint: Checkpoint,
        override_sets: List[Dict[int, int]],
        at_next_boundary: bool,
    ) -> List[Outcome]:
        """Run up to :data:`MAX_LANES` injections simultaneously.

        Bit-exact with :meth:`_run_injected` per lane: the same fingerprint
        convergence checks, halt handling, and DUE budget are applied at the
        same cycle boundaries.
        """
        count = len(override_sets)
        psim = self._packed
        envs = [self.system.make_env(self.program) for _ in range(count)]
        psim.load(checkpoint, envs)
        if at_next_boundary:
            psim.step()
        for lane, overrides in enumerate(override_sets):
            psim.override_lane_dffs(lane, overrides)
        budget = self.golden.cycles + self.margin_cycles
        golden_fps = self.golden.fingerprints
        golden_obs = self.golden.observables
        self.stats.runs += count
        start_cycle = psim.cycle
        outcomes: List[Outcome] = [Outcome.MASKED] * count
        unresolved = set(range(count))
        while unresolved:
            cycle = psim.cycle
            for lane in sorted(unresolved):
                if (
                    cycle < len(golden_fps)
                    and psim.lane_fingerprint(lane) == golden_fps[cycle]
                ):
                    produced = envs[lane].observables()
                    outcomes[lane] = (
                        Outcome.MASKED
                        if produced == golden_obs[: len(produced)]
                        else Outcome.SDC
                    )
                    self.stats.converged += 1
                    unresolved.discard(lane)
            if not unresolved:
                break
            if cycle >= budget:
                for lane in unresolved:
                    outcomes[lane] = Outcome.DUE
                    self.stats.timed_out += 1
                unresolved.clear()
                break
            psim.step()
            for lane in sorted(unresolved):
                if envs[lane].halted():
                    produced = envs[lane].observables()
                    if produced == golden_obs:
                        outcomes[lane] = Outcome.MASKED
                    elif any(e and e[0] == "trap" for e in produced):
                        outcomes[lane] = Outcome.DUE
                    else:
                        outcomes[lane] = Outcome.SDC
                    self.stats.ran_to_halt += 1
                    unresolved.discard(lane)
        self.stats.cycles_simulated += psim.cycle - start_cycle
        return outcomes

    # ------------------------------------------------------------------
    def _run_injected(
        self,
        checkpoint: Checkpoint,
        overrides: Dict[int, int],
        at_next_boundary: bool,
    ) -> Outcome:
        sim = self.sim
        env = self.system.make_env(self.program)
        sim.restore(checkpoint, env)
        if at_next_boundary:
            sim.step()
        sim.override_dffs(overrides)
        # If the forced values all equal the current latched state, the
        # "error" is not an error at all (can happen for particle-strike
        # style injections given as absolute values).
        budget = self.golden.cycles + self.margin_cycles
        golden_fps = self.golden.fingerprints
        golden_obs = self.golden.observables
        self.stats.runs += 1
        start_cycle = sim.cycle
        while True:
            cycle = sim.cycle
            if cycle < len(golden_fps) and sim.fingerprint() == golden_fps[cycle]:
                self.stats.converged += 1
                self.stats.cycles_simulated += sim.cycle - start_cycle
                produced = env.observables()
                if produced == golden_obs[: len(produced)]:
                    return Outcome.MASKED
                return Outcome.SDC
            if cycle >= budget:
                self.stats.timed_out += 1
                self.stats.cycles_simulated += sim.cycle - start_cycle
                return Outcome.DUE
            sim.step()
            if env.halted():
                break
        self.stats.ran_to_halt += 1
        self.stats.cycles_simulated += sim.cycle - start_cycle
        produced = env.observables()
        if produced == golden_obs:
            return Outcome.MASKED
        if any(event and event[0] == "trap" for event in produced):
            return Outcome.DUE
        return Outcome.SDC
