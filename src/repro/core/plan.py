"""Campaign planning: expand a configuration into executable work shards.

A structure campaign is a cross-product (sampled cycles × sampled wires ×
delay fractions).  :func:`build_plan` expands it into a deterministic list of
:class:`WorkShard` descriptors — one shard per sampled cycle, carrying the
full wire × delay cross-product of that cycle — so the paper's §V-C
cache-reuse order (cycle outermost: fault-free waveforms and GroupACE
verdicts are shared by every wire and delay examined at one cycle) is a
property of the *plan* rather than an accident of loop nesting.

Shards reference wires by index into the structure's canonical wire list
(``system.structure_wires(structure)``) instead of carrying :class:`Wire`
objects, so a shard is a small, picklable description that any worker can
resolve against its own rebuilt session.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.core import tracing
from repro.core.sampling import sample_wires


@dataclass(frozen=True)
class WorkShard:
    """One schedulable unit: every injection of one sampled cycle."""

    index: int  #: position in the plan (merge order)
    cycle: int  #: the sampled injection cycle
    wire_indices: Tuple[int, ...]  #: indices into the structure's wire list
    delay_fractions: Tuple[float, ...]

    @property
    def injections(self) -> int:
        return len(self.wire_indices) * len(self.delay_fractions)

    def injection_pairs(self, skip=()) -> list:
        """The shard's ``(wire_index, delay_fraction)`` pairs in evaluation
        (wire-outer / delay-inner) order, minus any pairs in *skip*.

        This is the executor's feed into the batched timing-aware injection
        API (:meth:`repro.core.dynamic_reach.DynamicReachability.
        reachable_set_batch`): the whole cycle's cross-product goes through
        one batch so injections sharing a fan-out cone share its
        construction.
        """
        return [
            (index, delay)
            for index in self.wire_indices
            for delay in self.delay_fractions
            if (index, delay) not in skip
        ]

    # ------------------------------------------------------------------
    # Wire round-trip (the distributed coordinator ships shards as JSON)
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """A JSON-safe dict :meth:`from_payload` rebuilds exactly.

        Every field is already a primitive (indices, a cycle, floats), so
        the payload is lossless — a remote worker resolves the same wires
        against its own rebuilt session and executes the identical shard.
        """
        return {
            "index": self.index,
            "cycle": self.cycle,
            "wire_indices": list(self.wire_indices),
            "delay_fractions": list(self.delay_fractions),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "WorkShard":
        return cls(
            index=int(payload["index"]),
            cycle=int(payload["cycle"]),
            wire_indices=tuple(int(i) for i in payload["wire_indices"]),
            delay_fractions=tuple(
                float(d) for d in payload["delay_fractions"]
            ),
        )


@dataclass(frozen=True)
class CampaignPlan:
    """The deterministic expansion of one structure campaign."""

    structure: str
    benchmark: str
    wire_count: int  #: |E| of the structure (Table I)
    wire_indices: Tuple[int, ...]  #: sampled wires, in evaluation order
    delay_fractions: Tuple[float, ...]
    sampled_cycles: Tuple[int, ...]
    shards: Tuple[WorkShard, ...]
    #: packed-lane width every simulation layer of this campaign uses —
    #: stamped from ``config.lane_width`` so workers executing a pickled
    #: shard fill the same words as the coordinator.  Each shard carries a
    #: whole cycle's wire × delay cross-product, so the batch feed is
    #: always a lane-width multiple until the final partial word.
    lane_width: int = 64

    @property
    def total_injections(self) -> int:
        return sum(shard.injections for shard in self.shards)

    # ------------------------------------------------------------------
    # Wire round-trip (the distributed coordinator ships plans as JSON)
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """A JSON-safe dict :meth:`from_payload` rebuilds exactly."""
        return {
            "structure": self.structure,
            "benchmark": self.benchmark,
            "wire_count": self.wire_count,
            "wire_indices": list(self.wire_indices),
            "delay_fractions": list(self.delay_fractions),
            "sampled_cycles": list(self.sampled_cycles),
            "shards": [shard.to_payload() for shard in self.shards],
            "lane_width": self.lane_width,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "CampaignPlan":
        return cls(
            structure=str(payload["structure"]),
            benchmark=str(payload["benchmark"]),
            wire_count=int(payload["wire_count"]),
            wire_indices=tuple(int(i) for i in payload["wire_indices"]),
            delay_fractions=tuple(
                float(d) for d in payload["delay_fractions"]
            ),
            sampled_cycles=tuple(int(c) for c in payload["sampled_cycles"]),
            shards=tuple(
                WorkShard.from_payload(shard) for shard in payload["shards"]
            ),
            lane_width=int(payload.get("lane_width", 64)),
        )


def build_plan(
    structure: str,
    benchmark: str,
    wires: Sequence,
    sampled_cycles: Sequence[int],
    config,
    delay_fractions: Optional[Sequence[float]] = None,
    max_wires: Optional[int] = None,
    seed: Optional[int] = None,
) -> CampaignPlan:
    """Expand a structure campaign into per-cycle :class:`WorkShard`\\ s.

    *wires* is the structure's canonical wire list; the sampled subset keeps
    its seeded sample order (which the serial engine has always used), so
    plans — and therefore merged results — are byte-identical to the legacy
    nested loops.
    """
    with tracing.span(
        "plan.build", cat="plan",
        structure=structure, cycles=len(sampled_cycles),
    ):
        delays = tuple(
            delay_fractions if delay_fractions is not None else config.delay_fractions
        )
        chosen = sample_wires(
            wires,
            max_wires if max_wires is not None else config.max_wires,
            seed if seed is not None else config.seed,
        )
        # One enumerate pass; the old per-wire list.index() lookup was O(n^2).
        index_of = {wire: index for index, wire in enumerate(wires)}
        wire_indices = tuple(index_of[wire] for wire in chosen)
        shards = tuple(
            WorkShard(
                index=position,
                cycle=cycle,
                wire_indices=wire_indices,
                delay_fractions=delays,
            )
            for position, cycle in enumerate(sampled_cycles)
        )
        return CampaignPlan(
            structure=structure,
            benchmark=benchmark,
            wire_count=len(wires),
            wire_indices=wire_indices,
            delay_fractions=delays,
            sampled_cycles=tuple(sampled_cycles),
            shards=shards,
            lane_width=int(getattr(config, "lane_width", 64)),
        )


def build_refinement_plan(
    base: CampaignPlan,
    new_wire_indices: Sequence[int],
    new_cycles: Sequence[int],
) -> CampaignPlan:
    """A plan covering exactly the (wire, cycle) pairs *base* does not.

    Adaptive refinement grows a campaign's sample without re-simulating: the
    returned shards cover the new wires at every already-sampled cycle plus
    *all* wires (old and new) at every new cycle — together with *base* that
    is the full cross-product of the widened sample, and by construction no
    (wire, cycle, delay) triple appears in both plans.

    Shards keep the cycle-outermost §V-C order: old cycles first (their
    fault-free waveforms and GroupACE verdicts are already warm), then the
    new cycles.
    """
    with tracing.span(
        "plan.refinement", cat="plan",
        structure=base.structure,
        new_wires=len(tuple(new_wire_indices)),
        new_cycles=len(tuple(new_cycles)),
    ):
        return _build_refinement_plan(base, new_wire_indices, new_cycles)


def _build_refinement_plan(
    base: CampaignPlan,
    new_wire_indices: Sequence[int],
    new_cycles: Sequence[int],
) -> CampaignPlan:
    new_wires = tuple(new_wire_indices)
    all_wires = base.wire_indices + new_wires
    shards = []
    if new_wires:
        for cycle in base.sampled_cycles:
            shards.append(
                WorkShard(
                    index=len(shards),
                    cycle=cycle,
                    wire_indices=new_wires,
                    delay_fractions=base.delay_fractions,
                )
            )
    for cycle in new_cycles:
        shards.append(
            WorkShard(
                index=len(shards),
                cycle=cycle,
                wire_indices=all_wires,
                delay_fractions=base.delay_fractions,
            )
        )
    return CampaignPlan(
        structure=base.structure,
        benchmark=base.benchmark,
        wire_count=base.wire_count,
        wire_indices=all_wires,
        delay_fractions=base.delay_fractions,
        sampled_cycles=base.sampled_cycles + tuple(new_cycles),
        shards=tuple(shards),
        lane_width=base.lane_width,
    )
