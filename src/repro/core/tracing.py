"""Span-based tracing for campaign execution.

A campaign that shards, batches, retries, and refines is opaque from the
outside: ``--stats`` reports *how much* time each phase consumed, but not
*when*, *where* (which process), or *nested inside what*.  This module adds
the missing dimension: context-manager **spans** with ids, parents, and
campaign attributes (structure, shard, cycle, wire counts), buffered
per-process and exported as

- **Chrome trace-event JSON** (``*.json``) — loadable directly in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``, one track per process,
  so a parallel campaign's worker overlap is visible at a glance, and
- **JSONL** (``*.jsonl``) — one span dict per line for ad-hoc scripting.

Design rules:

- **Disabled tracing is a no-op.**  The module-level :func:`span` helper
  returns one shared ``nullcontext`` when the tracer is off; the hot path
  pays a function call and an attribute check, nothing else.  Campaigns
  without ``--trace`` must not measurably slow down.
- **Spans are plain dicts.**  They pickle across process boundaries without
  custom reducers: pool workers drain their buffer into each
  :class:`repro.core.executor.ShardResult` and the coordinator folds the
  buffers back with :func:`extend`.
- **Identity is (name, category, attributes).**  Process ids and span ids are
  bookkeeping, not identity: a serial and a parallel run of the same campaign
  produce the same *set* of span identities (duplicates collapse — two
  workers each building the same fan-out cone are one identity), which is the
  property the parity tests pin.
- **Timestamps are comparable across processes.**  Each tracer stamps spans
  with ``epoch + perf_counter()`` microseconds, where ``epoch`` anchors the
  monotonic clock to wall time once per process; within a process, nesting is
  exact.

The per-process tracer is a module-level singleton; workers reset and
re-enable it from their :class:`~repro.core.executor.SessionSpec` config in
the pool initializer (a forked worker would otherwise inherit the parent's
buffer).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

#: Span categories used by the built-in instrumentation.  ``executor`` spans
#: describe coordination work that legitimately differs between serial and
#: parallel runs; every other category is expected to be execution-shape
#: invariant (see :func:`span_identity`).
CATEGORIES = ("campaign", "plan", "session", "shard", "sim", "cache", "executor")

#: Categories whose span sets may legitimately differ between a serial and a
#: parallel run of the same campaign (scheduling and persistence artifacts).
NONDETERMINISTIC_CATEGORIES = frozenset({"executor", "cache"})


class Tracer:
    """A per-process span collector (see the module docstring)."""

    __slots__ = ("enabled", "spans", "_stack", "_next_id", "_pid", "_epoch")

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.spans: List[Dict[str, Any]] = []
        self._stack: List[int] = []
        self._next_id = 1
        self._stamp_process()

    def _stamp_process(self) -> None:
        self._pid = os.getpid()
        self._epoch = time.time() - time.perf_counter()

    def reset(self) -> None:
        """Clear the buffer and re-anchor to this process (fork-safe)."""
        self.spans = []
        self._stack = []
        self._next_id = 1
        self._stamp_process()

    # ------------------------------------------------------------------
    @contextmanager
    def span(
        self, name: str, cat: str = "campaign", **attrs: Any
    ) -> Iterator[Optional[int]]:
        """Record the ``with`` body as one complete ("X") span."""
        if not self.enabled:
            yield None
            return
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        self._stack.append(span_id)
        start = time.perf_counter()
        try:
            yield span_id
        finally:
            duration = time.perf_counter() - start
            self._stack.pop()
            self.spans.append(
                {
                    "name": name,
                    "cat": cat,
                    "ph": "X",
                    "ts": (self._epoch + start) * 1e6,
                    "dur": duration * 1e6,
                    "pid": self._pid,
                    "tid": self._pid,
                    "id": span_id,
                    "parent": parent,
                    "args": attrs,
                }
            )

    def instant(self, name: str, cat: str = "campaign", **attrs: Any) -> None:
        """Record a zero-duration ("i") marker event (retries, rebuilds)."""
        if not self.enabled:
            return
        span_id = self._next_id
        self._next_id += 1
        self.spans.append(
            {
                "name": name,
                "cat": cat,
                "ph": "i",
                "ts": (self._epoch + time.perf_counter()) * 1e6,
                "dur": 0.0,
                "pid": self._pid,
                "tid": self._pid,
                "id": span_id,
                "parent": self._stack[-1] if self._stack else None,
                "args": attrs,
            }
        )

    def drain(self) -> List[Dict[str, Any]]:
        """Return and clear the buffered spans (picklable plain dicts)."""
        spans, self.spans = self.spans, []
        return spans

    def extend(self, spans: Sequence[Dict[str, Any]]) -> None:
        """Fold spans drained from another process into this buffer."""
        self.spans.extend(spans)


#: The per-process tracer singleton every instrumented module talks to.
_TRACER = Tracer(enabled=False)

#: Shared no-op context manager returned by :func:`span` when disabled —
#: ``nullcontext`` is stateless, so one instance serves every call site.
_NULL_SPAN = nullcontext()


def tracer() -> Tracer:
    return _TRACER


def enabled() -> bool:
    return _TRACER.enabled


def enable(reset: bool = False) -> None:
    if reset:
        _TRACER.reset()
    _TRACER.enabled = True


def disable() -> None:
    _TRACER.enabled = False


def configure(on: bool, reset: bool = False) -> None:
    """Set the process-local tracer state (used by pool-worker init)."""
    if reset:
        _TRACER.reset()
    _TRACER.enabled = bool(on)


def reset() -> None:
    _TRACER.reset()


def span(name: str, cat: str = "campaign", **attrs: Any):
    """A context manager recording one span — or a shared no-op when off."""
    if not _TRACER.enabled:
        return _NULL_SPAN
    return _TRACER.span(name, cat, **attrs)


def instant(name: str, cat: str = "campaign", **attrs: Any) -> None:
    if _TRACER.enabled:
        _TRACER.instant(name, cat, **attrs)


def drain() -> List[Dict[str, Any]]:
    return _TRACER.drain()


def extend(spans: Optional[Sequence[Dict[str, Any]]]) -> None:
    if spans:
        _TRACER.extend(spans)


def stitch_remote_spans(
    spans: Sequence[Dict[str, Any]],
    *,
    pid: Optional[int] = None,
    parent: Optional[int] = None,
    parent_pid: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Re-home spans drained from a remote worker into the coordinator trace.

    Mutates and returns *spans*: every span is relabelled to the worker's
    track (*pid*, used for both ``pid`` and ``tid`` so each remote worker
    renders as its own Perfetto process), and each *root* span — one with no
    parent in the worker's own buffer — is parent-linked to the
    coordinator-side dispatch span (*parent*, with ``parent_pid`` recording
    which process that id belongs to, since span ids are only unique per
    process).  Only bookkeeping fields change: :func:`span_identity` ignores
    pids, ids, and parents, so serial/remote span-set parity is preserved.
    """
    for entry in spans:
        if pid is not None:
            entry["pid"] = pid
            entry["tid"] = pid
        if parent is not None and entry.get("parent") is None:
            entry["parent"] = parent
            if parent_pid is not None:
                entry["parent_pid"] = parent_pid
    return list(spans)


def span_identity(span_dict: Dict[str, Any]) -> Tuple:
    """Execution-shape identity of a span: ``(name, cat, sorted attrs)``.

    Excludes timing, process ids, and span ids, so identical campaign work
    maps to identical identities no matter which process (or how many
    processes) performed it.
    """
    return (
        span_dict.get("name"),
        span_dict.get("cat"),
        tuple(sorted(span_dict.get("args", {}).items())),
    )


# ----------------------------------------------------------------------
# Export / import
# ----------------------------------------------------------------------
def to_chrome_trace(spans: Optional[Sequence[Dict[str, Any]]] = None) -> Dict:
    """The Chrome trace-event representation (Perfetto / chrome://tracing).

    Complete ("X") events carry ``dur``; instants ("i") carry scope ``s``.
    Span and parent ids travel in ``args`` so nothing is lost on export.
    """
    events = []
    for entry in _TRACER.spans if spans is None else spans:
        event = {
            "name": entry["name"],
            "cat": entry.get("cat", "campaign"),
            "ph": entry.get("ph", "X"),
            "ts": entry["ts"],
            "pid": entry.get("pid", 0),
            "tid": entry.get("tid", entry.get("pid", 0)),
            "args": {
                "span_id": entry.get("id"),
                "parent_id": entry.get("parent"),
                **entry.get("args", {}),
            },
        }
        if event["ph"] == "i":
            event["s"] = "t"
        else:
            event["dur"] = entry.get("dur", 0.0)
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _atomic_write(path: str, text: str) -> None:
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=os.path.basename(path), suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def write_chrome_trace(
    path: str, spans: Optional[Sequence[Dict[str, Any]]] = None
) -> None:
    _atomic_write(path, json.dumps(to_chrome_trace(spans)))


def write_jsonl(path: str, spans: Optional[Sequence[Dict[str, Any]]] = None) -> None:
    source = _TRACER.spans if spans is None else spans
    _atomic_write(path, "".join(json.dumps(entry) + "\n" for entry in source))


def write_trace(path: str, spans: Optional[Sequence[Dict[str, Any]]] = None) -> None:
    """Write *spans* to *path*: JSONL for ``*.jsonl``, Chrome JSON otherwise."""
    if str(path).endswith(".jsonl"):
        write_jsonl(path, spans)
    else:
        write_chrome_trace(path, spans)


def _span_from_event(event: Dict[str, Any]) -> Dict[str, Any]:
    """Normalize one Chrome trace event back into the internal span shape."""
    args = dict(event.get("args", {}))
    # Chrome exports tuck the ids into args; JSONL keeps the internal shape
    # with top-level "id"/"parent".  Accept both.
    span_id = args.pop("span_id", None)
    parent_id = args.pop("parent_id", None)
    if span_id is None:
        span_id = event.get("id")
    if parent_id is None:
        parent_id = event.get("parent")
    return {
        "name": event.get("name", ""),
        "cat": event.get("cat", "campaign"),
        "ph": event.get("ph", "X"),
        "ts": float(event.get("ts", 0.0)),
        "dur": float(event.get("dur", 0.0)),
        "pid": event.get("pid", 0),
        "tid": event.get("tid", event.get("pid", 0)),
        "id": span_id,
        "parent": parent_id,
        "args": args,
    }


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Load spans from a Chrome-trace JSON or JSONL file written above."""
    with open(path) as handle:
        text = handle.read()
    try:
        payload = json.loads(text)
    except ValueError:
        payload = None
    if isinstance(payload, dict) and "traceEvents" in payload:
        return [_span_from_event(event) for event in payload["traceEvents"]]
    if isinstance(payload, list):
        return [_span_from_event(event) for event in payload]
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(_span_from_event(json.loads(line)))
    return spans


# ----------------------------------------------------------------------
# Summaries (the ``repro trace summarize`` subcommand)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpanSummary:
    """Per-name rollup separating wall-clock from cumulative span time.

    ``wall_seconds`` is the length of the union of the name's intervals —
    overlapping spans (parallel workers) count once, which is what an
    operator's clock would measure.  ``cpu_seconds`` is the plain sum of
    durations — the total effort spent across every process, which is what
    per-worker phase timers accumulate.  The gap between the two columns is
    the campaign's parallelism.
    """

    name: str
    cat: str
    count: int
    wall_seconds: float
    cpu_seconds: float


def _interval_union(intervals: List[Tuple[float, float]]) -> float:
    """Total length covered by possibly-overlapping ``(start, end)`` pairs."""
    total = 0.0
    current_start = current_end = None
    for start, end in sorted(intervals):
        if current_end is None or start > current_end:
            if current_end is not None:
                total += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    if current_end is not None:
        total += current_end - current_start
    return total


def summarize_trace(spans: Sequence[Dict[str, Any]]) -> List[SpanSummary]:
    """Per-name wall vs cumulative breakdown, widest wall first."""
    grouped: Dict[Tuple[str, str], List[Dict[str, Any]]] = {}
    for entry in spans:
        if entry.get("ph", "X") != "X":
            continue
        grouped.setdefault(
            (entry.get("name", ""), entry.get("cat", "campaign")), []
        ).append(entry)
    summaries = []
    for (name, cat), members in grouped.items():
        intervals = [
            (entry["ts"] / 1e6, (entry["ts"] + entry.get("dur", 0.0)) / 1e6)
            for entry in members
        ]
        summaries.append(
            SpanSummary(
                name=name,
                cat=cat,
                count=len(members),
                wall_seconds=_interval_union(intervals),
                cpu_seconds=sum(entry.get("dur", 0.0) for entry in members) / 1e6,
            )
        )
    summaries.sort(key=lambda s: (-s.wall_seconds, s.name))
    return summaries


def trace_wall_seconds(spans: Sequence[Dict[str, Any]]) -> float:
    """Wall-clock covered by the whole trace (union over all "X" spans)."""
    intervals = [
        (entry["ts"] / 1e6, (entry["ts"] + entry.get("dur", 0.0)) / 1e6)
        for entry in spans
        if entry.get("ph", "X") == "X"
    ]
    return _interval_union(intervals)
