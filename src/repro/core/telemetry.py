"""Campaign telemetry: counters, gauges, and phase timers.

One :class:`CampaignTelemetry` instance is threaded through a campaign
session's analyzers (:class:`repro.core.delayavf.DelayAceEvaluator`,
:class:`repro.core.group_ace.GroupAceAnalyzer`,
:class:`repro.core.dynamic_reach.DynamicReachability`) so that a campaign can
report *why* it was fast or slow: how many injections the §V-C short-circuits
skipped, how well the GroupACE / verdict caches performed, how full the
packed-simulator lanes ran, and where the wall-clock time went.

Counters are plain integer increments (cheap enough for per-injection use);
gauges are last-write-wins floats for point-in-time measurements (the final
``ci_half_width`` of an adaptive campaign is a level, not a tally); phase
timers are cumulative ``time.perf_counter`` spans.  Instances merge, so the
parallel executor can combine per-worker telemetry into one campaign report,
and snapshots/diffs are plain dicts, so they pickle across process
boundaries.

The fault-tolerance counters (``shard_retries``, ``shard_timeouts``,
``pool_rebuilds``, ``serial_fallbacks``, ``shards_resumed``) record how hard
the executors had to work to bring a campaign home; a non-zero
``shard_timeouts``, ``pool_rebuilds``, or ``serial_fallbacks`` also raises
the ``degraded`` flag on the campaign's
:class:`repro.core.results.StructureCampaignResult`.  The robustness counters
(``refinement_rounds``, ``extra_shards``, ``guard_violations``) and the
``ci_half_width`` gauge record what the adaptive-precision loop and the
post-merge invariant guards did.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

#: Presentation order for the known counters (unknown ones sort last).
COUNTER_ORDER = (
    "probe_runs",
    "probe_skips",
    "length_hint_hits",
    "stale_length_hints",
    "golden_runs",
    "waveforms_built",
    "injections",
    "static_unreachable",
    "toggle_skips",
    "dynamic_empty",
    "multi_bit_sets",
    "resim_cache_hits",
    "cone_resims",
    "batch_resims",
    "batch_scalar_fallbacks",
    "cone_index_hits",
    "cone_index_builds",
    "group_ace_runs",
    "group_ace_cache_hits",
    "verdict_cache_hits",
    "record_cache_hits",
    "lane_batches",
    "lanes_filled",
    "shard_retries",
    "shard_timeouts",
    "pool_rebuilds",
    "serial_fallbacks",
    "shards_resumed",
    "refinement_rounds",
    "extra_shards",
    "guard_violations",
)

#: Presentation order for the known phases.
PHASE_ORDER = (
    "golden",
    "plan",
    "waveforms",
    "batch_resim",
    "prefetch",
    "evaluate",
    "execute",
    "merge",
    "refine",
    "guards",
)

#: Presentation order for the known gauges.
GAUGE_ORDER = ("ci_half_width",)


class CampaignTelemetry:
    """Mutable counters + gauges + phase timers for one campaign session."""

    __slots__ = ("counters", "phase_seconds", "gauges")

    def __init__(
        self,
        counters: Optional[Dict[str, int]] = None,
        phase_seconds: Optional[Dict[str, float]] = None,
        gauges: Optional[Dict[str, float]] = None,
    ):
        self.counters: Dict[str, int] = dict(counters or {})
        self.phase_seconds: Dict[str, float] = dict(phase_seconds or {})
        self.gauges: Dict[str, float] = dict(gauges or {})

    # ------------------------------------------------------------------
    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def count(self, name: str) -> int:
        return self.counters.get(name, 0)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def gauge(self, name: str) -> Optional[float]:
        return self.gauges.get(name)

    def add_seconds(self, phase: str, seconds: float) -> None:
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    @contextmanager
    def timer(self, phase: str) -> Iterator[None]:
        """Accumulate the wall-clock time of the ``with`` body under *phase*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_seconds(phase, time.perf_counter() - start)

    # ------------------------------------------------------------------
    # Snapshots, diffs, and merging (plain dicts: picklable across workers)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        return {
            "counters": dict(self.counters),
            "phase_seconds": dict(self.phase_seconds),
            "gauges": dict(self.gauges),
        }

    def diff(self, before: Dict[str, Dict]) -> Dict[str, Dict]:
        """Snapshot delta since *before* (an earlier :meth:`snapshot`)."""
        counters = {
            name: value - before["counters"].get(name, 0)
            for name, value in self.counters.items()
            if value != before["counters"].get(name, 0)
        }
        phases = {
            name: value - before["phase_seconds"].get(name, 0.0)
            for name, value in self.phase_seconds.items()
            if value != before["phase_seconds"].get(name, 0.0)
        }
        gauges = {
            name: value
            for name, value in self.gauges.items()
            if value != before.get("gauges", {}).get(name)
        }
        return {"counters": counters, "phase_seconds": phases, "gauges": gauges}

    def merge_snapshot(self, snap: Dict[str, Dict]) -> None:
        for name, value in snap.get("counters", {}).items():
            self.incr(name, value)
        for name, value in snap.get("phase_seconds", {}).items():
            self.add_seconds(name, value)
        for name, value in snap.get("gauges", {}).items():
            self.set_gauge(name, value)

    def merge(self, other: "CampaignTelemetry") -> None:
        self.merge_snapshot(other.snapshot())

    @classmethod
    def from_snapshot(cls, snap: Dict[str, Dict]) -> "CampaignTelemetry":
        return cls(
            snap.get("counters"), snap.get("phase_seconds"), snap.get("gauges")
        )

    # ------------------------------------------------------------------
    # Pickling (__slots__ classes need explicit state handling)
    # ------------------------------------------------------------------
    def __getstate__(self):
        return self.snapshot()

    def __setstate__(self, state):
        self.counters = dict(state.get("counters", {}))
        self.phase_seconds = dict(state.get("phase_seconds", {}))
        self.gauges = dict(state.get("gauges", {}))

    def __eq__(self, other) -> bool:
        if not isinstance(other, CampaignTelemetry):
            return NotImplemented
        return (
            self.counters == other.counters
            and self.phase_seconds == other.phase_seconds
            and self.gauges == other.gauges
        )

    def __repr__(self) -> str:
        return (
            f"CampaignTelemetry(counters={self.counters!r}, "
            f"phase_seconds={self.phase_seconds!r}, "
            f"gauges={self.gauges!r})"
        )
