"""Campaign telemetry: counters, gauges, and phase timers.

One :class:`CampaignTelemetry` instance is threaded through a campaign
session's analyzers (:class:`repro.core.delayavf.DelayAceEvaluator`,
:class:`repro.core.group_ace.GroupAceAnalyzer`,
:class:`repro.core.dynamic_reach.DynamicReachability`) so that a campaign can
report *why* it was fast or slow: how many injections the §V-C short-circuits
skipped, how well the GroupACE / verdict caches performed, how full the
packed-simulator lanes ran, and where the wall-clock time went.

Counters are plain integer increments (cheap enough for per-injection use).
Gauges are point-in-time float levels (the final ``ci_half_width`` of an
adaptive campaign is a level, not a tally); when per-worker gauges merge back
into the coordinator, each gauge follows its declared policy in
:data:`GAUGE_MERGE_POLICIES` — ``max`` (the default: the worst level wins,
deterministically, no matter which worker's future completes first), ``min``,
or ``last`` (explicit opt-in to completion-order semantics).

Phase timers are cumulative ``time.perf_counter`` spans kept in **two**
ledgers: ``phase_seconds`` sums every span including per-worker ones merged
across process boundaries (labelled ``cpu·workers`` in reports — for a
parallel campaign this exceeds wall-clock by roughly the parallelism), and
``phase_wall_seconds`` records only spans observed by the owning process and
is deliberately *not* merged from worker snapshots, so on the coordinator it
is genuine wall-clock.  Serial campaigns show identical columns.

Instances merge, so the parallel executor can combine per-worker telemetry
into one campaign report, and snapshots/diffs are plain dicts, so they pickle
across process boundaries.

The fault-tolerance counters (``shard_retries``, ``shard_timeouts``,
``pool_rebuilds``, ``serial_fallbacks``, ``shards_resumed``) record how hard
the executors had to work to bring a campaign home; a non-zero
``shard_timeouts``, ``pool_rebuilds``, or ``serial_fallbacks`` also raises
the ``degraded`` flag on the campaign's
:class:`repro.core.results.StructureCampaignResult`.  The robustness counters
(``refinement_rounds``, ``extra_shards``, ``guard_violations``) and the
``ci_half_width`` gauge record what the adaptive-precision loop and the
post-merge invariant guards did.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

#: Presentation order for the known counters (unknown ones sort last).
COUNTER_ORDER = (
    "probe_runs",
    "probe_skips",
    "length_hint_hits",
    "length_store_hits",
    "stale_length_hints",
    "golden_runs",
    "waveforms_built",
    "injections",
    "static_unreachable",
    "toggle_skips",
    "dynamic_empty",
    "multi_bit_sets",
    "resim_cache_hits",
    "cone_resims",
    "batch_resims",
    "batch_scalar_fallbacks",
    "packed_cone_words",
    "packed_cone_lanes",
    "packed_cone_lane_slots",
    "packed_scalar_lanes",
    "cone_index_hits",
    "cone_index_builds",
    "group_ace_runs",
    "group_ace_cache_hits",
    "verdict_cache_hits",
    "record_cache_hits",
    "lane_batches",
    "lanes_filled",
    "lane_slots",
    "shard_retries",
    "shard_timeouts",
    "pool_rebuilds",
    "serial_fallbacks",
    "shards_resumed",
    # Remote-worker fleet lifecycle (counted by the distributed coordinator,
    # repro.distrib.coordinator.RemoteExecutor; an eviction also raises the
    # campaign's degraded flag, like pool rebuilds do for the process pool).
    "remote_workers_joined",
    "remote_workers_evicted",
    "remote_shards_completed",
    "refinement_rounds",
    "extra_shards",
    "guard_violations",
    # Coverage-directed workload generation: vectors persisted after a merge.
    "coverage_vectors",
    # Campaign-service job lifecycle (counted by repro.service, reported
    # through the same telemetry pipeline as everything else).
    "jobs_submitted",
    "jobs_deduplicated",
    "jobs_completed",
    "jobs_failed",
    "client_disconnects",
    # Durability & integrity (PR 9): cache quarantines, journal recovery,
    # bounded-queue rejections, fleet circuit breakers, transport hygiene.
    "cache_quarantines",
    "jobs_recovered",
    "jobs_requeued",
    "jobs_rejected_overloaded",
    "journal_torn_tails",
    "breaker_trips",
    "breaker_probes",
    "breaker_recoveries",
    "breaker_short_circuits",
    "corrupt_frames",
    "spool_files_swept",
)

#: Presentation order for the known phases.
PHASE_ORDER = (
    "campaign",
    "golden",
    "plan",
    "waveforms",
    "batch_resim",
    "prefetch",
    "evaluate",
    "execute",
    "merge",
    "refine",
    "guards",
)

#: Presentation order for the known gauges.
GAUGE_ORDER = (
    "ci_half_width",
    "packed_lane_occupancy",
    "group_ace_lane_occupancy",
    "eval_programs_cached",
    "eval_program_evictions",
)

#: How each gauge combines when worker snapshots merge into the coordinator.
#: ``max``: the largest incoming-or-current value wins (order-independent;
#: right for "worst level observed" gauges like ``ci_half_width`` — a
#: campaign is only as converged as its least-converged worker).  ``min``:
#: the smallest wins.  ``last``: incoming overwrites current — the historical
#: behaviour, now an explicit opt-in because it makes the merged value depend
#: on future-completion order.  Undeclared gauges default to
#: :data:`DEFAULT_GAUGE_POLICY`.
GAUGE_MERGE_POLICIES: Dict[str, str] = {
    "ci_half_width": "max",
    # Occupancy gauges are recomputed post-merge from their counters in
    # DelayAVFEngine._finalize; "last" keeps the recomputed value.
    "packed_lane_occupancy": "last",
    "group_ace_lane_occupancy": "last",
    # Program-cache gauges describe the coordinator's shared EvalPlan.
    "eval_programs_cached": "max",
    "eval_program_evictions": "max",
}

DEFAULT_GAUGE_POLICY = "max"

_VALID_GAUGE_POLICIES = frozenset({"max", "min", "last"})


def gauge_merge_policy(name: str) -> str:
    """The declared merge policy for gauge *name* (default ``max``)."""
    policy = GAUGE_MERGE_POLICIES.get(name, DEFAULT_GAUGE_POLICY)
    if policy not in _VALID_GAUGE_POLICIES:
        raise ValueError(f"unknown gauge merge policy {policy!r} for {name!r}")
    return policy


class CampaignTelemetry:
    """Mutable counters + gauges + phase timers for one campaign session."""

    __slots__ = ("counters", "phase_seconds", "phase_wall_seconds", "gauges")

    def __init__(
        self,
        counters: Optional[Dict[str, int]] = None,
        phase_seconds: Optional[Dict[str, float]] = None,
        gauges: Optional[Dict[str, float]] = None,
        phase_wall_seconds: Optional[Dict[str, float]] = None,
    ):
        self.counters: Dict[str, int] = dict(counters or {})
        self.phase_seconds: Dict[str, float] = dict(phase_seconds or {})
        self.phase_wall_seconds: Dict[str, float] = dict(phase_wall_seconds or {})
        self.gauges: Dict[str, float] = dict(gauges or {})

    # ------------------------------------------------------------------
    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def count(self, name: str) -> int:
        return self.counters.get(name, 0)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def merge_gauge(self, name: str, value: float) -> None:
        """Fold an incoming (e.g. per-worker) gauge in by its declared policy."""
        value = float(value)
        current = self.gauges.get(name)
        policy = gauge_merge_policy(name)
        if current is None or policy == "last":
            self.gauges[name] = value
        elif policy == "max":
            self.gauges[name] = max(current, value)
        else:  # "min"
            self.gauges[name] = min(current, value)

    def gauge(self, name: str) -> Optional[float]:
        return self.gauges.get(name)

    def add_seconds(self, phase: str, seconds: float, wall: bool = True) -> None:
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds
        if wall:
            self.phase_wall_seconds[phase] = (
                self.phase_wall_seconds.get(phase, 0.0) + seconds
            )

    @contextmanager
    def timer(self, phase: str) -> Iterator[None]:
        """Accumulate the wall-clock time of the ``with`` body under *phase*.

        Spans recorded through :meth:`timer` are wall-clock *in the recording
        process* and land in both ledgers; only the merge step (which brings
        in spans timed by other processes) adds to ``phase_seconds`` alone.
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_seconds(phase, time.perf_counter() - start)

    # ------------------------------------------------------------------
    # Snapshots, diffs, and merging (plain dicts: picklable across workers)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        return {
            "counters": dict(self.counters),
            "phase_seconds": dict(self.phase_seconds),
            "phase_wall_seconds": dict(self.phase_wall_seconds),
            "gauges": dict(self.gauges),
        }

    def diff(self, before: Dict[str, Dict]) -> Dict[str, Dict]:
        """Snapshot delta since *before* (an earlier :meth:`snapshot`).

        All sections treat *before* defensively (an older-shape snapshot
        missing a section reads as empty) and symmetrically: a counter or
        phase present only in *before* yields a negative delta instead of
        being silently dropped.
        """
        before_counters = before.get("counters", {})
        before_phases = before.get("phase_seconds", {})
        before_wall = before.get("phase_wall_seconds", {})
        before_gauges = before.get("gauges", {})
        counters = {}
        for name in sorted(set(self.counters) | set(before_counters)):
            delta = self.counters.get(name, 0) - before_counters.get(name, 0)
            if delta:
                counters[name] = delta
        phases = {}
        for name in sorted(set(self.phase_seconds) | set(before_phases)):
            delta = self.phase_seconds.get(name, 0.0) - before_phases.get(name, 0.0)
            if delta:
                phases[name] = delta
        wall = {}
        for name in sorted(set(self.phase_wall_seconds) | set(before_wall)):
            delta = self.phase_wall_seconds.get(name, 0.0) - before_wall.get(
                name, 0.0
            )
            if delta:
                wall[name] = delta
        gauges = {
            name: value
            for name, value in self.gauges.items()
            if value != before_gauges.get(name)
        }
        return {
            "counters": counters,
            "phase_seconds": phases,
            "phase_wall_seconds": wall,
            "gauges": gauges,
        }

    def merge_snapshot(self, snap: Dict[str, Dict]) -> None:
        """Fold a (typically per-worker) snapshot delta into this instance.

        Counters and cumulative ``phase_seconds`` sum; gauges follow their
        declared policy in :data:`GAUGE_MERGE_POLICIES`; incoming
        ``phase_wall_seconds`` are intentionally **dropped** — a worker's
        wall-clock is CPU time from the coordinator's point of view, and the
        coordinator's own wall ledger already covers the elapsed time.
        """
        for name, value in snap.get("counters", {}).items():
            self.incr(name, value)
        for name, value in snap.get("phase_seconds", {}).items():
            self.add_seconds(name, value, wall=False)
        for name, value in snap.get("gauges", {}).items():
            self.merge_gauge(name, value)

    def merge(self, other: "CampaignTelemetry") -> None:
        self.merge_snapshot(other.snapshot())

    @classmethod
    def from_snapshot(cls, snap: Dict[str, Dict]) -> "CampaignTelemetry":
        return cls(
            snap.get("counters"),
            snap.get("phase_seconds"),
            snap.get("gauges"),
            snap.get("phase_wall_seconds"),
        )

    # ------------------------------------------------------------------
    # Pickling (__slots__ classes need explicit state handling)
    # ------------------------------------------------------------------
    def __getstate__(self):
        return self.snapshot()

    def __setstate__(self, state):
        self.counters = dict(state.get("counters", {}))
        self.phase_seconds = dict(state.get("phase_seconds", {}))
        self.phase_wall_seconds = dict(state.get("phase_wall_seconds", {}))
        self.gauges = dict(state.get("gauges", {}))

    def __eq__(self, other) -> bool:
        if not isinstance(other, CampaignTelemetry):
            return NotImplemented
        return (
            self.counters == other.counters
            and self.phase_seconds == other.phase_seconds
            and self.phase_wall_seconds == other.phase_wall_seconds
            and self.gauges == other.gauges
        )

    def __repr__(self) -> str:
        return (
            f"CampaignTelemetry(counters={self.counters!r}, "
            f"phase_seconds={self.phase_seconds!r}, "
            f"phase_wall_seconds={self.phase_wall_seconds!r}, "
            f"gauges={self.gauges!r})"
        )
