"""Small-delay-fault model (Section IV).

An SDF adds an *extra* sub-cycle delay ``d`` to one wire for a single cycle.
Delays are specified as fractions of the clock period (the paper sweeps 10 %
to 90 %), since a designer without silicon data examines the whole range.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.netlist import Wire


@dataclass(frozen=True)
class DelayFault:
    """One small delay fault: +``delay_fraction``·T on ``wire`` in ``cycle``."""

    wire: Wire
    cycle: int
    delay_fraction: float

    def __post_init__(self) -> None:
        if not 0.0 < self.delay_fraction < 1.0:
            raise ValueError(
                "an SDF adds less than one clock period of delay; got "
                f"{self.delay_fraction!r}"
            )

    def extra_delay_ps(self, clock_period: float) -> float:
        """Absolute extra delay in picoseconds for a given clock period."""
        return self.delay_fraction * clock_period


#: The delay sweep the paper's figures use (10 % .. 90 % of the period).
DEFAULT_DELAY_FRACTIONS = (0.1, 0.3, 0.5, 0.7, 0.9)
