"""Statically reachable sets (Definition 2) with per-wire caching.

A state element is *statically reachable* w.r.t. an SDF of duration ``d`` on
wire ``e`` if it terminates a combinational path through ``e`` whose length
exceeds the clock period once ``d`` is added.  This is a purely structural
(cycle-independent) property computed by static timing analysis, so it is
cached per ``(wire, d)`` across the whole campaign — one of the paper's §V-C
optimizations (state elements outside this set trivially latch correctly and
never need timing-aware simulation).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from repro.netlist.netlist import Wire
from repro.timing.sta import StaticTiming


class StaticReachability:
    """Cached statically-reachable-set queries over one design."""

    def __init__(self, sta: StaticTiming):
        self.sta = sta
        self._cache: Dict[Tuple[Wire, float], FrozenSet[int]] = {}

    def reachable_set(self, wire: Wire, delay_fraction: float) -> FrozenSet[int]:
        """DFF indices statically reachable by +``delay_fraction``·T on *wire*."""
        key = (wire, delay_fraction)
        cached = self._cache.get(key)
        if cached is None:
            extra = delay_fraction * self.sta.clock_period
            cached = frozenset(self.sta.statically_reachable(wire, extra))
            self._cache[key] = cached
        return cached

    def is_reachable(self, wire: Wire, delay_fraction: float) -> bool:
        """Whether the SDF can violate timing at all (Fig. 8's *Static Reach*)."""
        return bool(self.reachable_set(wire, delay_fraction))
