"""Dynamically reachable sets (Definition 3) — the timing-aware step.

The dynamically reachable set of an SDF is the set of state elements that
actually latch an incorrect value: statically reachable *and* not logically
masked.  This module wraps the event-driven simulator with the §V-C
short-circuits:

- if the faulted wire's source does not toggle in the injection cycle, the
  set is trivially empty (no timing-aware simulation at all);
- if nothing is statically reachable, the set is trivially empty;
- otherwise only the fan-out cone of the faulted wire is re-simulated against
  the shared fault-free waveforms of that cycle.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.static_reach import StaticReachability
from repro.core.telemetry import CampaignTelemetry
from repro.netlist.netlist import Wire
from repro.sim.eventsim import CycleWaveforms, EventSimulator


class DynamicReachability:
    """Timing-aware dynamically-reachable-set computation."""

    def __init__(
        self,
        event_sim: EventSimulator,
        static: StaticReachability,
        telemetry: Optional[CampaignTelemetry] = None,
    ):
        self.event_sim = event_sim
        self.static = static
        self.telemetry = telemetry if telemetry is not None else CampaignTelemetry()

    def reachable_set(
        self, waves: CycleWaveforms, wire: Wire, delay_fraction: float
    ) -> Dict[int, int]:
        """``{dff_index: erroneous latched value}`` for this SDF.

        *waves* are the fault-free waveforms of the injection cycle (shared
        across every wire and delay examined at that cycle).  Results are
        memoized on the waveforms object so the batched campaign's prefetch
        pass and the per-record evaluation share one computation.
        """
        if not waves.toggles(wire.net):
            self.telemetry.incr("toggle_skips")
            return {}
        if not self.static.is_reachable(wire, delay_fraction):
            return {}
        key = (wire, delay_fraction)
        cached = waves.resim_cache.get(key)
        if cached is not None:
            self.telemetry.incr("resim_cache_hits")
            return dict(cached)
        self.telemetry.incr("cone_resims")
        extra = delay_fraction * self.static.sta.clock_period
        errors = self.event_sim.resimulate(waves, wire, extra)
        # Exactness check (Definition 3): every erroneous latch must be
        # statically reachable; anything else indicates a timing-model bug.
        static_set = self.static.reachable_set(wire, delay_fraction)
        assert set(errors) <= static_set, (
            "dynamically reachable set escaped the statically reachable set"
        )
        waves.resim_cache[key] = dict(errors)
        return errors
