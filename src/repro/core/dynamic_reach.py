"""Dynamically reachable sets (Definition 3) — the timing-aware step.

The dynamically reachable set of an SDF is the set of state elements that
actually latch an incorrect value: statically reachable *and* not logically
masked.  This module wraps the event-driven simulator with the §V-C
short-circuits:

- if the faulted wire's source does not toggle in the injection cycle, the
  set is trivially empty (no timing-aware simulation at all);
- if nothing is statically reachable, the set is trivially empty;
- otherwise only the fan-out cone of the faulted wire is re-simulated against
  the shared fault-free waveforms of that cycle.

:meth:`DynamicReachability.reachable_set_batch` applies the same
short-circuits to a whole cycle's worth of (wire, delay) queries at once and
feeds the survivors to :meth:`repro.sim.eventsim.EventSimulator.
resimulate_batch`, which amortizes cone construction and fault-free waveform
gathering across the batch (the ``batch_resims`` / ``cone_index_hits``
telemetry and the ``batch_resim`` phase timer report how much of the campaign
ran batched).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import tracing
from repro.core.static_reach import StaticReachability
from repro.core.telemetry import CampaignTelemetry
from repro.netlist.netlist import Wire
from repro.sim.eventsim import CycleWaveforms, EventSimulator


class DynamicReachability:
    """Timing-aware dynamically-reachable-set computation."""

    def __init__(
        self,
        event_sim: EventSimulator,
        static: StaticReachability,
        telemetry: Optional[CampaignTelemetry] = None,
    ):
        self.event_sim = event_sim
        self.static = static
        self.telemetry = telemetry if telemetry is not None else CampaignTelemetry()

    def reachable_set(
        self, waves: CycleWaveforms, wire: Wire, delay_fraction: float
    ) -> Dict[int, int]:
        """``{dff_index: erroneous latched value}`` for this SDF.

        *waves* are the fault-free waveforms of the injection cycle (shared
        across every wire and delay examined at that cycle).  Results are
        memoized on the waveforms object so the batched campaign's prefetch
        pass and the per-record evaluation share one computation.
        """
        if not waves.toggles(wire.net):
            self.telemetry.incr("toggle_skips")
            return {}
        if not self.static.is_reachable(wire, delay_fraction):
            return {}
        key = (wire, delay_fraction)
        cached = waves.resim_cache.get(key)
        if cached is not None:
            self.telemetry.incr("resim_cache_hits")
            return dict(cached)
        self.telemetry.incr("cone_resims")
        extra = delay_fraction * self.static.sta.clock_period
        errors = self.event_sim.resimulate(waves, wire, extra)
        # Exactness check (Definition 3): every erroneous latch must be
        # statically reachable; anything else indicates a timing-model bug.
        static_set = self.static.reachable_set(wire, delay_fraction)
        assert set(errors) <= static_set, (
            "dynamically reachable set escaped the statically reachable set"
        )
        waves.resim_cache[key] = dict(errors)
        return errors

    def reachable_set_batch(
        self,
        waves: CycleWaveforms,
        queries: Sequence[Tuple[Wire, float]],
        lanes: int = 64,
    ) -> List[Dict[int, int]]:
        """Batched :meth:`reachable_set` over one cycle's injections.

        Applies the §V-C short-circuits and the per-cycle memo to every
        (wire, delay-fraction) query first, then re-simulates the remaining
        misses in one :meth:`EventSimulator.resimulate_batch` call so that
        injections sharing a fan-out cone share its construction and
        fault-free slices, word-packed up to *lanes* bit-planes wide.
        Results are memoized like the scalar path, so a later
        :meth:`reachable_set` for the same query is a cache hit.  Returns
        one reachable-set dict per query, in input order.
        """
        telemetry = self.telemetry
        results: List[Optional[Dict[int, int]]] = [None] * len(queries)
        pending: Dict[Tuple[Wire, float], List[int]] = {}
        for pos, (wire, fraction) in enumerate(queries):
            if not waves.toggles(wire.net):
                telemetry.incr("toggle_skips")
                results[pos] = {}
            elif not self.static.is_reachable(wire, fraction):
                results[pos] = {}
            else:
                key = (wire, fraction)
                cached = waves.resim_cache.get(key)
                if cached is not None:
                    telemetry.incr("resim_cache_hits")
                    results[pos] = dict(cached)
                else:
                    pending.setdefault(key, []).append(pos)
        if pending:
            sim = self.event_sim
            period = self.static.sta.clock_period
            keys = list(pending)
            hits_before = sim.cone_index.hits
            builds_before = sim.cone_index.builds
            fallbacks_before = sim.batch_scalar_fallbacks
            packed_before = (
                sim.packed_cone_words,
                sim.packed_cone_lanes,
                sim.packed_cone_lane_slots,
                sim.packed_scalar_lanes,
            )
            with telemetry.timer("batch_resim"), tracing.span(
                "dynamic.batch_reach", cat="sim",
                cycle=waves.cycle, queries=len(keys), lanes=lanes,
            ):
                batch = sim.resimulate_batch(
                    waves,
                    [(wire, fraction * period) for wire, fraction in keys],
                    lanes=lanes,
                )
            telemetry.incr("batch_resims", len(keys))
            telemetry.incr(
                "cone_index_hits", sim.cone_index.hits - hits_before
            )
            telemetry.incr(
                "cone_index_builds", sim.cone_index.builds - builds_before
            )
            telemetry.incr(
                "batch_scalar_fallbacks",
                sim.batch_scalar_fallbacks - fallbacks_before,
            )
            telemetry.incr(
                "packed_cone_words", sim.packed_cone_words - packed_before[0]
            )
            telemetry.incr(
                "packed_cone_lanes", sim.packed_cone_lanes - packed_before[1]
            )
            telemetry.incr(
                "packed_cone_lane_slots",
                sim.packed_cone_lane_slots - packed_before[2],
            )
            telemetry.incr(
                "packed_scalar_lanes",
                sim.packed_scalar_lanes - packed_before[3],
            )
            for key, errors in zip(keys, batch):
                wire, fraction = key
                static_set = self.static.reachable_set(wire, fraction)
                assert set(errors) <= static_set, (
                    "dynamically reachable set escaped the statically "
                    "reachable set"
                )
                waves.resim_cache[key] = dict(errors)
                for pos in pending[key]:
                    results[pos] = dict(errors)
        return results  # type: ignore[return-value]
