"""Sampling plans for statistical fault-injection campaigns.

The paper injects into every wire at 4 % of execution cycles, equally spaced
("the injection points were chosen to be equally spaced out throughout the
whole program execution").  This repo additionally samples *wires* uniformly
(seeded) to keep campaigns laptop-sized; both estimators are unbiased for
the (wire, cycle) mean that DelayAVF is.

Two guarantees matter for downstream statistics:

- :func:`sample_cycles` returns **exactly** ``min(count, usable)`` distinct
  cycles.  The naive "round each equally spaced position" construction can
  collapse neighbouring positions into one cycle (set dedup), silently
  shrinking the sample a confidence interval divides by; here colliding
  positions are de-collided into adjacent free cycles instead.
- Both samplers are deterministic functions of their arguments, so two
  processes planning the same campaign produce the same plan (the resume /
  CI-parity story depends on it).

The ``extend_*`` helpers grow an existing sample *monotonically* — new draws
never overlap old ones — which is what lets adaptive-precision refinement
(:meth:`repro.core.campaign.DelayAVFEngine.run_structure_adaptive`) add
samples without ever re-simulating an already-covered (wire, cycle) pair.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Set, TypeVar

T = TypeVar("T")


def sample_cycles(
    total_cycles: int,
    count: Optional[int] = None,
    fraction: Optional[float] = None,
    warmup: int = 2,
) -> List[int]:
    """Equally spaced injection cycles across the program's execution.

    Exactly one of *count* / *fraction* must be given.  *warmup* skips the
    first cycles (reset ramp-in, before the first instruction issues).

    Returns exactly ``min(count, total_cycles - warmup)`` distinct cycles in
    ``[warmup, total_cycles)``: ideal equally spaced positions that happen to
    round onto the same cycle are pushed to the nearest free neighbour rather
    than silently dropped, so the achieved sample size — the ``n`` every
    confidence interval divides by — always matches the plan.
    """
    if (count is None) == (fraction is None):
        raise ValueError("specify exactly one of count= or fraction=")
    usable = total_cycles - warmup
    if usable <= 0:
        return []
    if count is None:
        count = max(1, round(usable * fraction))
    count = min(count, usable)
    step = usable / count
    targets = [warmup + int(i * step + step / 2) for i in range(count)]
    # De-collide forward: each cycle is at least one past its predecessor.
    cycles: List[int] = []
    last = warmup - 1
    for target in targets:
        last = max(target, last + 1)
        cycles.append(last)
    # The forward pass can run past the end; reflect the overflow back into
    # the free cycles below (count <= usable guarantees room).
    limit = total_cycles - 1
    for i in range(len(cycles) - 1, -1, -1):
        if cycles[i] > limit:
            cycles[i] = limit
        limit = cycles[i] - 1
    return cycles


def extend_cycle_sample(
    total_cycles: int,
    existing: Sequence[int],
    extra: int,
    warmup: int = 2,
) -> List[int]:
    """Up to *extra* new cycles spread across the execution, disjoint from
    *existing*.

    Used by adaptive refinement to densify the cycle sample: candidates come
    from the denser equally spaced grid, with any shortfall (grid positions
    already taken) filled by the first free cycles.  Deterministic, and the
    union with *existing* stays duplicate-free by construction.
    """
    usable = total_cycles - warmup
    taken: Set[int] = set(existing)
    extra = min(extra, max(0, usable - len(taken)))
    if extra <= 0:
        return []
    new: List[int] = []
    dense = sample_cycles(
        total_cycles, count=min(len(taken) + extra, usable), warmup=warmup
    )
    for cycle in dense:
        if cycle not in taken:
            taken.add(cycle)
            new.append(cycle)
            if len(new) == extra:
                return sorted(new)
    for cycle in range(warmup, total_cycles):
        if cycle not in taken:
            taken.add(cycle)
            new.append(cycle)
            if len(new) == extra:
                break
    return sorted(new)


def sample_wires(wires: Sequence[T], count: Optional[int], seed: int) -> List[T]:
    """Uniform seeded sample of *count* wires (all wires if count is None)."""
    if count is None or count >= len(wires):
        return list(wires)
    rng = random.Random(seed)
    return rng.sample(list(wires), count)


def extend_index_sample(
    population: int,
    existing: Sequence[int],
    extra: int,
    seed_material: str,
) -> List[int]:
    """Up to *extra* uniformly drawn indices from ``range(population)`` that
    avoid *existing*.

    *seed_material* is any stable string (structure, base seed, refinement
    round); two processes extending the same sample draw the same indices.
    """
    taken = set(existing)
    remaining = [index for index in range(population) if index not in taken]
    extra = min(extra, len(remaining))
    if extra <= 0:
        return []
    rng = random.Random(seed_material)
    return rng.sample(remaining, extra)
