"""Sampling plans for statistical fault-injection campaigns.

The paper injects into every wire at 4 % of execution cycles, equally spaced
("the injection points were chosen to be equally spaced out throughout the
whole program execution").  This repo additionally samples *wires* uniformly
(seeded) to keep campaigns laptop-sized; both estimators are unbiased for
the (wire, cycle) mean that DelayAVF is.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, TypeVar

T = TypeVar("T")


def sample_cycles(
    total_cycles: int,
    count: Optional[int] = None,
    fraction: Optional[float] = None,
    warmup: int = 2,
) -> List[int]:
    """Equally spaced injection cycles across the program's execution.

    Exactly one of *count* / *fraction* must be given.  *warmup* skips the
    first cycles (reset ramp-in, before the first instruction issues).
    """
    if (count is None) == (fraction is None):
        raise ValueError("specify exactly one of count= or fraction=")
    usable = total_cycles - warmup
    if usable <= 0:
        return []
    if count is None:
        count = max(1, round(usable * fraction))
    count = min(count, usable)
    step = usable / count
    cycles = sorted({warmup + int(i * step + step / 2) for i in range(count)})
    return [c for c in cycles if c < total_cycles]


def sample_wires(wires: Sequence[T], count: Optional[int], seed: int) -> List[T]:
    """Uniform seeded sample of *count* wires (all wires if count is None)."""
    if count is None or count >= len(wires):
        return list(wires)
    rng = random.Random(seed)
    return rng.sample(list(wires), count)
