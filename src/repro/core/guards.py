"""Invariant guards and preflight validation for campaigns.

Two defensive layers around the campaign engine:

**Post-merge invariant guards** (:func:`check_campaign_result`,
:func:`apply_guards`) re-derive the algebraic facts the paper guarantees —
a delay-ACE injection must have produced state-element errors, an error set
cannot exceed the statically reachable set, static reachability is monotone
in the injected delay (a longer delay can only violate more paths), Eq. 4
forces ``DelayAVF <= OrDelayAVF`` in the absence of multi-bit compounding —
and mark a merged :class:`repro.core.results.StructureCampaignResult`
``suspect`` with machine-readable reasons when any fails.  A violation means
the result is *wrong* (cache corruption, a simulator bug, mixed-provenance
records), not merely imprecise, so the guards annotate instead of crashing:
a service returns the flagged result and lets the operator decide.

**Preflight validation** (:func:`preflight_campaign`,
:func:`ensure_preflight`) checks a campaign's inputs *before any shard
executes*: netlist connectivity, timing-library sanity, an operating clock
period the fault-free design can actually meet, workload feasibility, and
cache-directory writability.  Problems surface as :class:`Finding` rows —
``repro doctor`` prints all of them; :mod:`repro.api` raises the first
fatal one as a :class:`repro.errors.ReproError`.
"""

from __future__ import annotations

import os
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.results import (
    DelayAVFResult,
    SAVFResult,
    StructureCampaignResult,
)
from repro.core.stats import DEFAULT_CONFIDENCE
from repro.errors import CacheError, InputError, ReproError, TimingError, WorkloadError

#: Slack for floating-point comparisons between derived rates.
_EPS = 1e-9


# ======================================================================
# Post-merge invariant guards
# ======================================================================
@dataclass(frozen=True)
class GuardViolation:
    """One violated invariant, in machine-readable form.

    ``code`` is stable (tests and pipelines dispatch on it); ``message``
    is the human-readable detail, including where the violation was seen
    and how often.
    """

    code: str
    message: str

    def render(self) -> str:
        return f"{self.code}: {self.message}"


def _record_violations(result: DelayAVFResult) -> List[GuardViolation]:
    """Per-record consistency checks, aggregated one violation per code."""
    hits: Dict[str, List[str]] = {}

    def hit(code: str, record, detail: str) -> None:
        hits.setdefault(code, []).append(
            f"wire {record.wire_index} cycle {record.cycle}: {detail}"
        )

    for record in result.records:
        if record.num_errors < 0 or record.num_statically_reachable < 0:
            hit(
                "negative-count", record,
                f"num_errors={record.num_errors}, "
                f"num_statically_reachable={record.num_statically_reachable}",
            )
            continue
        if not record.statically_reachable and (
            record.num_statically_reachable > 0
            or record.num_errors > 0
            or record.outcome.is_failure
        ):
            hit(
                "static-unreachable-inconsistent", record,
                "statically unreachable injection reports errors or a failure",
            )
        if record.num_errors > record.num_statically_reachable:
            hit(
                "error-count-exceeds-static", record,
                f"{record.num_errors} errors in a statically reachable set "
                f"of {record.num_statically_reachable}",
            )
        if record.outcome.is_failure and record.num_errors == 0:
            hit(
                "failure-without-errors", record,
                f"outcome {record.outcome.value} with an empty error set",
            )
        if record.or_ace and record.num_errors == 0:
            hit("orace-without-errors", record, "ORACE verdict on an empty error set")
        if (
            record.num_errors == 1
            and record.or_ace is not None
            and bool(record.or_ace) != record.delay_ace
        ):
            # On a single-bit error set GroupACE degenerates to ORACE, so the
            # two verdicts must agree (Definition 6 reduces to Definition 4).
            hit(
                "singleton-orace-mismatch", record,
                f"or_ace={record.or_ace} but delay_ace={record.delay_ace} "
                "on a single-bit error set",
            )
    violations = []
    for code, examples in sorted(hits.items()):
        suffix = "" if len(examples) == 1 else f" (+{len(examples) - 1} more)"
        violations.append(
            GuardViolation(
                code=code,
                message=f"d={result.delay_fraction}: {examples[0]}{suffix}",
            )
        )
    return violations


def _aggregate_violations(result: DelayAVFResult) -> List[GuardViolation]:
    """Cross-metric inequality checks on one delay's merged rates."""
    violations: List[GuardViolation] = []
    d = result.delay_fraction
    if result.delay_avf > result.dynamic_reach_rate + _EPS:
        violations.append(
            GuardViolation(
                "avf-ordering",
                f"d={d}: DelayAVF {result.delay_avf:.6f} exceeds dynamic "
                f"reach rate {result.dynamic_reach_rate:.6f}",
            )
        )
    if result.dynamic_reach_rate > result.static_reach_rate + _EPS:
        violations.append(
            GuardViolation(
                "reach-ordering",
                f"d={d}: dynamic reach rate {result.dynamic_reach_rate:.6f} "
                f"exceeds static reach rate {result.static_reach_rate:.6f}",
            )
        )
    if result.or_delay_avf > result.dynamic_reach_rate + _EPS:
        violations.append(
            GuardViolation(
                "orace-ordering",
                f"d={d}: OrDelayAVF {result.or_delay_avf:.6f} exceeds "
                f"dynamic reach rate {result.dynamic_reach_rate:.6f}",
            )
        )
    # Eq. 4 composes per-element ORACE over the error set, so OrDelayAVF can
    # only fall below DelayAVF through multi-bit compounding (Table III).
    # With no multi-bit sets and every error set carrying an ORACE verdict,
    # the ordering is exact.
    orace_complete = all(
        r.or_ace is not None for r in result.records if r.num_errors > 0
    )
    if (
        orace_complete
        and result.multi_bit_fraction == 0.0
        and result.delay_avf > result.or_delay_avf + _EPS
    ):
        violations.append(
            GuardViolation(
                "eq4-ordering",
                f"d={d}: DelayAVF {result.delay_avf:.6f} exceeds OrDelayAVF "
                f"{result.or_delay_avf:.6f} with no multi-bit error sets",
            )
        )
    return violations


def _cross_delay_violations(
    result: StructureCampaignResult,
) -> List[GuardViolation]:
    """Checks across the delay sweep: coverage parity and monotonicity."""
    violations: List[GuardViolation] = []
    delays = sorted(result.by_delay)
    if len(delays) < 2:
        return violations
    keyed = {
        d: {(r.wire_index, r.cycle): r for r in result.by_delay[d].records}
        for d in delays
    }
    base_keys = set(keyed[delays[0]])
    for d in delays[1:]:
        if set(keyed[d]) != base_keys:
            violations.append(
                GuardViolation(
                    "delay-coverage-mismatch",
                    f"d={delays[0]} and d={d} cover different "
                    "(wire, cycle) sets",
                )
            )
            return violations  # monotonicity needs matching keys
    # A larger injected delay can only lengthen paths, so the statically
    # reachable set grows monotonically in d (Definition 2).
    for lo, hi in zip(delays, delays[1:]):
        bad = [
            key
            for key, record in keyed[lo].items()
            if record.num_statically_reachable
            > keyed[hi][key].num_statically_reachable
        ]
        if bad:
            wire, cycle = bad[0]
            suffix = "" if len(bad) == 1 else f" (+{len(bad) - 1} more)"
            violations.append(
                GuardViolation(
                    "static-monotonicity",
                    f"wire {wire} cycle {cycle}: statically reachable set "
                    f"shrinks from d={lo} to d={hi}{suffix}",
                )
            )
            break
    return violations


def check_campaign_result(
    result: StructureCampaignResult,
) -> List[GuardViolation]:
    """Every invariant violation in a merged campaign result.

    An empty list means the result is internally consistent with the paper's
    algebra; any entry means some producing layer (simulator, cache, merge)
    emitted impossible data and the numbers cannot be trusted.
    """
    violations: List[GuardViolation] = []
    for _, delay_result in sorted(result.by_delay.items()):
        violations.extend(_record_violations(delay_result))
        violations.extend(_aggregate_violations(delay_result))
    violations.extend(_cross_delay_violations(result))
    return violations


def check_ecc_savf(
    baseline: SAVFResult,
    ecc: SAVFResult,
    confidence: float = DEFAULT_CONFIDENCE,
) -> Optional[GuardViolation]:
    """SEC ECC cannot *raise* a structure's sAVF.

    Compared at the interval level (ECC's lower bound above the baseline's
    upper bound) so ordinary sampling noise between two finite campaigns
    does not trip the guard.
    """
    if ecc.savf_ci(confidence).lo > baseline.savf_ci(confidence).hi + _EPS:
        return GuardViolation(
            "ecc-raises-savf",
            f"{ecc.structure}: ECC sAVF {ecc.savf:.6f} is significantly "
            f"above the unprotected {baseline.savf:.6f} "
            f"at {confidence:.0%} confidence",
        )
    return None


def apply_guards(
    result: StructureCampaignResult, telemetry=None
) -> List[GuardViolation]:
    """Run :func:`check_campaign_result` and annotate *result* in place.

    Sets ``suspect`` / ``suspect_reasons`` and bumps the
    ``guard_violations`` telemetry counter; returns the violations.
    """
    violations = check_campaign_result(result)
    if violations:
        result.suspect = True
        result.suspect_reasons = tuple(v.render() for v in violations)
        if telemetry is not None:
            telemetry.incr("guard_violations", len(violations))
    return violations


# ======================================================================
# Preflight validation
# ======================================================================
@dataclass(frozen=True)
class Finding:
    """One preflight observation: a fatal error or an advisory warning."""

    severity: str  #: ``"error"`` or ``"warning"``
    code: str  #: machine-readable category (mirrors ReproError.code)
    message: str
    hint: Optional[str] = None
    #: for errors: the exception :func:`ensure_preflight` raises
    error: Optional[ReproError] = field(default=None, compare=False)

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    def render(self) -> str:
        tag = "ERROR" if self.is_error else "WARN "
        line = f"[{tag}] {self.code}: {self.message}"
        if self.hint:
            line += f" (hint: {self.hint})"
        return line


def _error(exc: ReproError) -> Finding:
    return Finding(
        severity="error",
        code=exc.code,
        message=str(exc),
        hint=exc.hint,
        error=exc,
    )


def _warning(code: str, message: str, hint: Optional[str] = None) -> Finding:
    return Finding(severity="warning", code=code, message=message, hint=hint)


def preflight_system(system) -> List[Finding]:
    """Validate the hardware side: netlist, timing library, clock period."""
    from repro.netlist.validate import NetlistError, validate
    from repro.timing.liberty import library_problems

    findings: List[Finding] = []
    try:
        validate(system.netlist)
    except NetlistError as exc:
        findings.append(
            _error(
                NetlistError(
                    f"netlist {system.netlist.name!r}: {exc}",
                    hint="regenerate the netlist; a campaign over a "
                    "malformed netlist cannot simulate",
                )
            )
        )
    problems = library_problems(system.library)
    if problems:
        findings.append(
            _error(
                TimingError(
                    f"timing library {system.library.name!r}: "
                    + "; ".join(problems),
                    hint="fix the library file; delays must be finite and "
                    "positive for STA to be meaningful",
                )
            )
        )
        return findings  # STA below would propagate the broken delays
    sta = system.sta
    if sta.clock_period + _EPS < sta.longest_path_ps:
        findings.append(
            _error(
                TimingError(
                    f"clock period {sta.clock_period:.1f} ps is below the "
                    f"longest register-to-register path "
                    f"{sta.longest_path_ps:.1f} ps",
                    hint="the fault-free design already misses setup; raise "
                    "clock_period_ps to at least the longest path",
                )
            )
        )
    return findings


def preflight_workload(system, program, config) -> List[Finding]:
    """Validate the workload side without running it."""
    from repro.core.cache import program_signature
    from repro.soc import memmap
    from repro.workloads.lengths import known_length

    findings: List[Finding] = []
    if not program.image:
        findings.append(
            _error(
                WorkloadError(
                    f"workload {program.name!r} has an empty image",
                    hint="assemble a program with at least one instruction",
                )
            )
        )
        return findings
    if len(program.image) > memmap.RAM_SIZE:
        findings.append(
            _error(
                WorkloadError(
                    f"workload {program.name!r} image is "
                    f"{len(program.image)} bytes but RAM holds "
                    f"{memmap.RAM_SIZE}",
                    hint="shrink the program or its data",
                )
            )
        )
    hint_cycles = known_length(program_signature(program))
    if hint_cycles is not None and hint_cycles > config.max_run_cycles:
        findings.append(
            _error(
                WorkloadError(
                    f"workload {program.name!r} is known to run "
                    f"{hint_cycles} cycles, above max_run_cycles="
                    f"{config.max_run_cycles}",
                    hint="raise max_run_cycles above the workload's "
                    "fault-free length",
                )
            )
        )
    if config.margin_cycles == 0:
        findings.append(
            _warning(
                "workload",
                "margin_cycles=0 leaves no hang budget: delay-induced "
                "infinite loops will be truncated, not detected as DUE",
                hint="keep a margin of a few thousand cycles",
            )
        )
    return findings


def preflight_cache_dir(cache_dir: Optional[str]) -> List[Finding]:
    """Validate that the verdict-cache directory is usable (when enabled).

    Beyond writability, every existing scope file is integrity-checked
    (payload checksum, parseability): a corrupt file is a warning, not an
    error, because the campaign will quarantine it and rebuild from
    simulation — but the operator should know resume state was lost.
    """
    from repro.core.cache import verify_cache_dir

    if not cache_dir:
        return []
    probe = os.path.join(cache_dir, f".doctor-{uuid.uuid4().hex}.tmp")
    try:
        os.makedirs(cache_dir, exist_ok=True)
        with open(probe, "w", encoding="utf-8") as handle:
            handle.write("ok")
        os.unlink(probe)
    except OSError as exc:
        return [
            _error(
                CacheError(
                    f"cache directory {cache_dir!r} is not writable: {exc}",
                    hint="point --cache-dir at a writable directory or "
                    "disable the cache",
                )
            )
        ]
    findings: List[Finding] = []
    report = verify_cache_dir(cache_dir)
    for path, detail in report["corrupt"]:
        findings.append(
            _warning(
                "cache.corrupt",
                f"verdict cache file {path} fails integrity verification: "
                f"{detail}",
                hint="the campaign will quarantine it and re-simulate; run "
                "'repro fsck --quarantine' to move it aside now",
            )
        )
    for path, detail in report["foreign"]:
        findings.append(
            _warning(
                "cache.foreign",
                f"verdict cache file {path} has a foreign schema: {detail}",
                hint="written by a different build; it will be ignored, "
                "not resumed from",
            )
        )
    return findings


def preflight_structure(
    system, structure: str, max_wires: Optional[int] = None
) -> List[Finding]:
    """Validate a structure name and the wire-sample request against it."""
    findings: List[Finding] = []
    try:
        wires = system.structure_wires(structure)
    except Exception:
        known = ", ".join(sorted(system.structures))
        findings.append(
            _error(
                InputError(
                    f"unknown structure {structure!r}",
                    hint=f"known structures: {known} (or a raw scope path)",
                )
            )
        )
        return findings
    if not wires:
        known = ", ".join(sorted(system.structures))
        findings.append(
            _error(
                InputError(
                    f"structure {structure!r} has no injectable wires "
                    "(unknown name or empty scope)",
                    hint=f"known structures: {known} (or a raw scope path)",
                )
            )
        )
    elif max_wires is not None and max_wires > len(wires):
        findings.append(
            _warning(
                "input",
                f"requested {max_wires} wires but structure {structure!r} "
                f"has only {len(wires)}; the sample clamps to {len(wires)}",
            )
        )
    return findings


def preflight_campaign(
    system,
    program,
    config,
    structures: Sequence[str] = (),
) -> List[Finding]:
    """All preflight findings for one campaign, errors first."""
    findings: List[Finding] = []
    findings.extend(preflight_system(system))
    findings.extend(preflight_workload(system, program, config))
    findings.extend(preflight_cache_dir(config.cache_dir))
    if config.resume and not config.cache_dir:
        findings.append(
            _warning(
                "cache",
                "resume requested without a cache_dir; there is nothing to "
                "resume from and the flag is ignored",
                hint="pass cache_dir to make campaigns resumable",
            )
        )
    for structure in structures:
        findings.extend(
            preflight_structure(system, structure, config.max_wires)
        )
    findings.sort(key=lambda f: 0 if f.is_error else 1)
    return findings


def ensure_preflight(findings: Sequence[Finding]) -> None:
    """Raise the first fatal finding's :class:`ReproError` (if any)."""
    for finding in findings:
        if finding.is_error:
            if finding.error is not None:
                raise finding.error
            raise ReproError(finding.message, hint=finding.hint)
