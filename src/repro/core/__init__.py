"""The paper's contribution: DelayACE / DelayAVF and friends.

Implements Section V's two-step methodology (Eq. 4):

``DelayACE_d(e, i) = GroupACE(DynamicReachable_d(e, i), i + 1)``

- :mod:`repro.core.static_reach` — statically reachable sets (Definition 2),
- :mod:`repro.core.dynamic_reach` — dynamically reachable sets (Definition 3),
- :mod:`repro.core.group_ace` — GroupACE (Definition 4) via timing-agnostic
  injection against a golden run,
- :mod:`repro.core.delayavf` — DelayAVF (Eq. 3) estimation,
- :mod:`repro.core.savf` — classic particle-strike AVF (sAVF, Section VI-C),
- :mod:`repro.core.orace` — ORACE / OrDelayAVF and the ACE interference /
  compounding accounting (Section VII),
- :mod:`repro.core.campaign` — the statistical fault-injection campaign
  engine tying everything together with the paper's §V-C optimizations,
- :mod:`repro.core.plan` / :mod:`repro.core.executor` — campaign planning
  into per-cycle work shards and pluggable serial/process-pool execution,
- :mod:`repro.core.cache` — the persistent content-addressed verdict cache,
- :mod:`repro.core.telemetry` — campaign counters and phase timers.
"""

from repro.core.attribution import InstructionAttributor
from repro.core.cache import VerdictCache
from repro.core.campaign import CampaignConfig, CampaignSession, DelayAVFEngine
from repro.core.delay_model import DelayFault
from repro.core.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    SessionSpec,
)
from repro.core.failure_rate import structure_failure_fit
from repro.core.group_ace import GroupAceAnalyzer, Outcome
from repro.core.plan import CampaignPlan, WorkShard, build_plan
from repro.core.results import (
    DelayAVFResult,
    InjectionRecord,
    SAVFResult,
    StructureCampaignResult,
    geometric_mean,
    normalize,
)
from repro.core.sampling import sample_cycles, sample_wires
from repro.core.savf import SAVFEngine
from repro.core.telemetry import CampaignTelemetry

__all__ = [
    "CampaignConfig",
    "CampaignPlan",
    "CampaignSession",
    "CampaignTelemetry",
    "DelayAVFEngine",
    "DelayAVFResult",
    "DelayFault",
    "Executor",
    "GroupAceAnalyzer",
    "InjectionRecord",
    "InstructionAttributor",
    "Outcome",
    "ParallelExecutor",
    "SAVFEngine",
    "SAVFResult",
    "SerialExecutor",
    "SessionSpec",
    "StructureCampaignResult",
    "VerdictCache",
    "WorkShard",
    "build_plan",
    "geometric_mean",
    "normalize",
    "sample_cycles",
    "sample_wires",
    "structure_failure_fit",
]
