"""Instruction-level attribution of injection outcomes.

A campaign tells a designer *where* (which structure) SDFs hurt; attribution
tells them *when*: which architectural instruction was in flight during the
faulty cycle.  This complements the structure view the way instruction-level
timing-error work (Chang et al., discussed in the paper's related work) does,
and is useful for the test-generation direction the paper sketches in §VIII
(functional tests that sensitize vulnerable instructions).

Implementation: the SoC exposes debug probes (the pipeline-head PC /
instruction nets).  For each sampled cycle the probe values are recovered by
re-settling the checkpointed state — no extra hardware, no re-simulation.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.results import InjectionRecord
from repro.isa.disasm import disassemble


@dataclass(frozen=True)
class InstructionContext:
    """What the pipeline head held during a given cycle."""

    cycle: int
    valid: bool
    pc: int
    instr: int

    @property
    def text(self) -> str:
        if not self.valid:
            return "<bubble>"
        return disassemble(self.instr, self.pc)


@dataclass
class AttributionRow:
    """Aggregated injection outcomes for one instruction address."""

    pc: int
    text: str
    injections: int = 0
    error_sets: int = 0
    failures: int = 0

    @property
    def delay_ace_rate(self) -> float:
        return self.failures / self.injections if self.injections else 0.0


class InstructionAttributor:
    """Maps campaign records to the instructions in flight."""

    def __init__(self, session):
        self.session = session
        system = session.system
        if not system.debug_probes:
            raise ValueError("system exposes no debug probes")
        self._sim = system.simulator()
        self._contexts: Dict[int, InstructionContext] = {}

    def context_of_cycle(self, cycle: int) -> InstructionContext:
        """The pipeline-head instruction during a sampled *cycle*."""
        cached = self._contexts.get(cycle)
        if cached is not None:
            return cached
        checkpoint = self.session.checkpoint(cycle)
        sim = self._sim
        sim.evaluate_combinational(
            checkpoint.input_values, checkpoint.dff_values
        )
        probes = self.session.system.debug_probes

        def read(nets: List[int]) -> int:
            return sum(int(sim.values[net]) << i for i, net in enumerate(nets))

        context = InstructionContext(
            cycle=cycle,
            valid=bool(read(probes["head_valid"])),
            pc=read(probes["head_pc"]),
            instr=read(probes["head_instr"]),
        )
        self._contexts[cycle] = context
        return context

    def attribute(
        self, records: Iterable[InjectionRecord]
    ) -> List[AttributionRow]:
        """Aggregate records per in-flight instruction, most-vulnerable first."""
        rows: Dict[Tuple[bool, int], AttributionRow] = {}
        for record in records:
            context = self.context_of_cycle(record.cycle)
            key = (context.valid, context.pc if context.valid else -1)
            row = rows.get(key)
            if row is None:
                row = AttributionRow(
                    pc=context.pc if context.valid else -1,
                    text=context.text,
                )
                rows[key] = row
            row.injections += 1
            row.error_sets += record.dynamically_reachable
            row.failures += record.delay_ace
        return sorted(
            rows.values(), key=lambda r: (r.failures, r.error_sets), reverse=True
        )
