"""DelayACE evaluation (Eq. 4) — the two-step composition.

``DelayACE_d(e, i) = GroupACE(DynamicReachable_d(e, i), i + 1)``

:class:`DelayAceEvaluator` composes the three primitives (statically
reachable pre-filter, timing-aware dynamically reachable set, timing-agnostic
GroupACE) into the per-injection record the campaign engine aggregates into
DelayAVF (Eq. 3).
"""

from __future__ import annotations

from typing import Optional

from repro.core.dynamic_reach import DynamicReachability
from repro.core.group_ace import GroupAceAnalyzer, Outcome
from repro.core.orace import OraceAnalyzer
from repro.core.results import InjectionRecord
from repro.core.static_reach import StaticReachability
from repro.core.telemetry import CampaignTelemetry
from repro.netlist.netlist import Wire
from repro.sim.cyclesim import Checkpoint
from repro.sim.eventsim import CycleWaveforms


class DelayAceEvaluator:
    """Evaluates DelayACE_d(e, i) for individual injections."""

    def __init__(
        self,
        static: StaticReachability,
        dynamic: DynamicReachability,
        group_ace: GroupAceAnalyzer,
        orace: Optional[OraceAnalyzer] = None,
        telemetry: Optional[CampaignTelemetry] = None,
    ):
        self.static = static
        self.dynamic = dynamic
        self.group_ace = group_ace
        self.orace = orace
        self.telemetry = telemetry if telemetry is not None else CampaignTelemetry()

    def evaluate(
        self,
        waves: CycleWaveforms,
        checkpoint: Checkpoint,
        wire: Wire,
        wire_index: int,
        delay_fraction: float,
        with_orace: bool = True,
    ) -> InjectionRecord:
        """Full two-step evaluation of one (wire, cycle, delay) injection."""
        self.telemetry.incr("injections")
        static_set = self.static.reachable_set(wire, delay_fraction)
        if not static_set:
            self.telemetry.incr("static_unreachable")
            return InjectionRecord(
                wire_index=wire_index,
                cycle=waves.cycle,
                delay_fraction=delay_fraction,
                statically_reachable=False,
                num_statically_reachable=0,
                num_errors=0,
                outcome=Outcome.MASKED,
            )
        errors = self.dynamic.reachable_set(waves, wire, delay_fraction)
        if not errors:
            self.telemetry.incr("dynamic_empty")
            return InjectionRecord(
                wire_index=wire_index,
                cycle=waves.cycle,
                delay_fraction=delay_fraction,
                statically_reachable=True,
                num_statically_reachable=len(static_set),
                num_errors=0,
                outcome=Outcome.MASKED,
            )
        if len(errors) > 1:
            self.telemetry.incr("multi_bit_sets")
        outcome = self.group_ace.outcome_of_state_errors(checkpoint, errors)
        or_ace = None
        if with_orace and self.orace is not None:
            if len(errors) == 1:
                or_ace = outcome.is_failure
            else:
                or_ace = self.orace.or_ace(checkpoint, errors)
        return InjectionRecord(
            wire_index=wire_index,
            cycle=waves.cycle,
            delay_fraction=delay_fraction,
            statically_reachable=True,
            num_statically_reachable=len(static_set),
            num_errors=len(errors),
            outcome=outcome,
            or_ace=or_ace,
        )
