"""Statistical fault-injection campaign engine.

:class:`CampaignSession` owns the expensive per-(system, workload) artefacts
shared across structures and delay sweeps:

- the golden run with per-cycle state fingerprints and checkpoints at the
  sampled injection cycles,
- the fault-free event-driven waveforms of each sampled cycle (computed once
  and reused by every wire and delay examined there),
- the GroupACE and ORACE analyzers with their cross-injection caches (and,
  when configured, a persistent on-disk verdict cache),
- the shared :class:`repro.core.telemetry.CampaignTelemetry` instance.

:class:`DelayAVFEngine` runs structure campaigns on top of a session in three
explicit layers: *planning* (:mod:`repro.core.plan` expands the campaign into
per-cycle work shards), *execution* (:mod:`repro.core.executor` runs shards
serially or on a process pool), and *merging* (deterministic assembly into a
:class:`repro.core.results.StructureCampaignResult`).
"""

from __future__ import annotations

import dataclasses
import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import tracing
from repro.core.cache import (
    observables_digest,
    program_signature,
    record_from_payload,
    record_key,
    record_to_payload,
    shard_key,
)
from repro.core.delay_model import DEFAULT_DELAY_FRACTIONS
from repro.core.delayavf import DelayAceEvaluator
from repro.core.dynamic_reach import DynamicReachability
from repro.core.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    SessionSpec,
    ShardResult,
    evaluate_prepared_shards,
    merge_shard_results,
    open_configured_cache,
    plan_queries,
    prepare_plan_shards,
)
from repro.core.group_ace import GroupAceAnalyzer, prefetch_spanning_multi
from repro.core.guards import apply_guards, ensure_preflight, preflight_campaign
from repro.core.metrics import heartbeat_path, write_metrics
from repro.core.orace import OraceAnalyzer
from repro.core.progress import Heartbeat, ProgressReporter
from repro.core.plan import build_plan, build_refinement_plan
from repro.core.results import DelayAVFResult, StructureCampaignResult
from repro.core.sampling import (
    extend_cycle_sample,
    extend_index_sample,
    sample_cycles,
)
from repro.core.static_reach import StaticReachability
from repro.core.stats import (
    DEFAULT_CONFIDENCE,
    ConfidenceInterval,
    required_samples,
)
from repro.core.telemetry import CampaignTelemetry
from repro.isa.assembler import Program
from repro.sim.cyclesim import Checkpoint, RunResult
from repro.sim.eventsim import CycleWaveforms
from repro.sim.packed import MAX_LANES, PackedCycleSimulator
from repro.workloads.lengths import LengthStore, known_length


@dataclass(frozen=True)
class CampaignConfig:
    """Every knob of a statistical campaign, validated at construction.

    The paper's configuration corresponds to ``cycle_fraction=0.04`` and
    ``max_wires=None`` (all wires); the defaults here are laptop-sized.
    This is the one place campaign knobs live: sampling (wires, cycles,
    seed), the delay sweep, execution (``jobs``), persistence
    (``cache_dir``), and reporting (``stats``).  Build it directly, or from
    a parsed CLI namespace via :meth:`from_cli_args`.
    """

    delay_fractions: Tuple[float, ...] = DEFAULT_DELAY_FRACTIONS
    cycle_count: Optional[int] = 10  #: number of equally spaced cycles
    cycle_fraction: Optional[float] = None  #: alternative: fraction of cycles
    max_wires: Optional[int] = 48  #: wires sampled per structure (None = all)
    seed: int = 0
    warmup_cycles: int = 2
    margin_cycles: int = 3000  #: extra cycles before declaring a hang (DUE)
    max_run_cycles: int = 200_000
    compute_orace: bool = True
    #: lane width of every packed simulation layer — GroupACE bit-plane
    #: batches and the event simulator's word-packed cone passes (1 disables
    #: packing; 64 is a full machine word)
    lanes: int = 64
    #: REMOVED alias of ``lanes`` (the deprecation cycle is finished): any
    #: non-None value raises ``ValueError`` pointing at ``lanes``
    batch_lanes: Optional[int] = None
    #: worker processes per structure campaign (>1 selects ParallelExecutor;
    #: requires the engine to be built from a picklable SessionSpec)
    jobs: int = 1
    #: directory for the persistent verdict cache ('' / None disables it)
    cache_dir: Optional[str] = None
    #: collect-and-report campaign telemetry (CLI ``--stats``)
    stats: bool = False
    #: seconds a parallel shard may run before it is presumed hung and the
    #: pool recycled (None disables the timeout); budget for a cold worker's
    #: golden run plus the slowest shard
    shard_timeout: Optional[float] = None
    #: additional attempts granted to a shard whose worker raised
    max_retries: int = 2
    #: base of the exponential retry backoff, in seconds
    retry_backoff: float = 0.05
    #: worker-pool rebuilds tolerated per campaign before the remaining
    #: shards degrade to in-process serial execution
    max_pool_rebuilds: int = 1
    #: completed shards between incremental verdict-cache flushes (1 flushes
    #: after every shard)
    flush_every_shards: int = 8
    #: seconds after which a pending incremental flush happens regardless
    flush_max_seconds: float = 10.0
    #: skip shards already marked complete in the verdict cache
    #: (CLI ``--resume``; requires ``cache_dir``)
    resume: bool = False
    #: validate system / workload / cache inputs before any shard executes
    #: (raises :class:`repro.errors.ReproError` on fatal problems)
    preflight: bool = True
    #: run the post-merge invariant guards (:mod:`repro.core.guards`) and
    #: flag violating results ``suspect``
    guards: bool = True
    #: refinement rounds an adaptive campaign may run after the initial wave
    refine_max_rounds: int = 8
    #: maximum per-round sample growth factor of an adaptive campaign
    refine_growth: float = 2.0
    #: collect span-based tracing (CLI ``--trace PATH`` sets this; workers
    #: inherit it through the SessionSpec so their spans travel back with
    #: shard results)
    trace: bool = False
    #: stream live shard progress to stderr (CLI ``--progress``)
    progress: bool = False
    #: write a Prometheus-textfile / JSON metrics snapshot here when the
    #: campaign finishes, and a throttled ``<path>.heartbeat`` JSON while it
    #: runs (CLI ``--metrics-out PATH``)
    metrics_out: Optional[str] = None
    #: minimum seconds between heartbeat-file rewrites
    heartbeat_seconds: float = 2.0
    #: distributed execution: the listen address remote ``repro worker``
    #: processes join — ``HOST:PORT`` (socket transport) or ``queue:DIR``
    #: (shared-filesystem queue); None keeps every shard on this host
    workers_from: Optional[str] = None
    #: seconds the remote coordinator waits for (more) workers once the
    #: fleet is empty before the remaining shards fall back to serial
    worker_wait_seconds: float = 30.0
    #: consecutive worker evictions (deaths, timeouts, corrupt frames) that
    #: trip the fleet circuit breaker into serial fallback
    breaker_threshold: int = 3
    #: cool-down seconds before a tripped breaker admits a half-open probe
    breaker_reset_seconds: float = 60.0

    def __post_init__(self):
        if not self.delay_fractions:
            raise ValueError("delay_fractions must not be empty")
        bad = [d for d in self.delay_fractions if not 0.0 < d <= 1.0]
        if bad:
            raise ValueError(
                f"delay fractions must be in (0, 1]: {sorted(bad)}"
            )
        if self.cycle_count is None and self.cycle_fraction is None:
            raise ValueError("one of cycle_count / cycle_fraction is required")
        if self.cycle_count is not None and self.cycle_count < 1:
            raise ValueError("cycle_count must be >= 1")
        if self.cycle_fraction is not None and not 0.0 < self.cycle_fraction <= 1.0:
            raise ValueError("cycle_fraction must be in (0, 1]")
        if self.max_wires is not None and self.max_wires < 1:
            raise ValueError("max_wires must be >= 1 (or None for all wires)")
        if self.warmup_cycles < 0 or self.margin_cycles < 0:
            raise ValueError("warmup_cycles / margin_cycles must be >= 0")
        if self.max_run_cycles < 1:
            raise ValueError("max_run_cycles must be >= 1")
        if not 1 <= self.lanes <= 64:
            raise ValueError(
                f"lanes must be in 1..64 (bit-planes of one machine word), "
                f"got {self.lanes}"
            )
        if self.batch_lanes is not None:
            raise ValueError(
                "batch_lanes was removed; pass lanes="
                f"{self.batch_lanes!r} instead"
            )
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError("shard_timeout must be > 0 seconds (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")
        if self.flush_every_shards < 1:
            raise ValueError("flush_every_shards must be >= 1")
        if self.flush_max_seconds < 0:
            raise ValueError("flush_max_seconds must be >= 0")
        if self.refine_max_rounds < 1:
            raise ValueError("refine_max_rounds must be >= 1")
        if self.refine_growth <= 1.0:
            raise ValueError("refine_growth must be > 1.0")
        if self.heartbeat_seconds <= 0:
            raise ValueError("heartbeat_seconds must be > 0")
        if self.workers_from is not None:
            from repro.distrib.transport import parse_workers_from

            parse_workers_from(self.workers_from)  # raises ValueError
        if self.worker_wait_seconds < 0:
            raise ValueError("worker_wait_seconds must be >= 0")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_reset_seconds < 0:
            raise ValueError("breaker_reset_seconds must be >= 0")

    @property
    def lane_width(self) -> int:
        """Effective packed-lane width (``lanes``; the ``batch_lanes`` alias
        is gone)."""
        return self.lanes

    @classmethod
    def from_cli_args(cls, args) -> "CampaignConfig":
        """Build a validated config from a parsed CLI namespace.

        Accepts any object exposing (a subset of) the ``delayavf``
        subcommand's attributes — ``delays``, ``cycles``, ``wires``,
        ``seed``, ``jobs``, ``cache_dir``, ``stats``, ``shard_timeout``,
        ``max_retries``, ``resume`` — falling back to the dataclass defaults
        for whatever is absent.
        """
        defaults = cls()

        def pick(name, fallback):
            value = getattr(args, name, None)
            return fallback if value is None else value

        return cls(
            delay_fractions=tuple(pick("delays", defaults.delay_fractions)),
            cycle_count=pick("cycles", defaults.cycle_count),
            max_wires=pick("wires", defaults.max_wires),
            seed=pick("seed", defaults.seed),
            lanes=pick("lanes", defaults.lanes),
            jobs=pick("jobs", defaults.jobs),
            cache_dir=getattr(args, "cache_dir", None),
            stats=bool(getattr(args, "stats", False)),
            shard_timeout=pick("shard_timeout", defaults.shard_timeout),
            max_retries=pick("max_retries", defaults.max_retries),
            resume=bool(getattr(args, "resume", False)),
            trace=bool(getattr(args, "trace", None)),
            progress=bool(getattr(args, "progress", False)),
            metrics_out=getattr(args, "metrics_out", None),
            workers_from=getattr(args, "workers_from", None),
        )

    def neutral(self) -> "CampaignConfig":
        """This config with the per-call reporting channels stripped.

        ``progress`` / ``metrics_out`` / ``stats`` only decide where a run
        *reports*, never what it computes (``trace`` stays: workers inherit
        it through the :class:`SessionSpec`, so it is engine state).  Keying
        engine caches on the neutral form lets clients that differ only in
        reporting share one engine — the multi-tenant service depends on it.
        """
        return dataclasses.replace(
            self, progress=False, metrics_out=None, stats=False
        )

    # ------------------------------------------------------------------
    # Wire round-trip (job submissions carry configs as JSON)
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """A JSON-serializable dict :meth:`from_payload` rebuilds exactly."""
        payload = dataclasses.asdict(self)
        payload["delay_fractions"] = list(self.delay_fractions)
        payload.pop("batch_lanes", None)  # removed alias: never on the wire
        return payload

    @classmethod
    def from_payload(cls, payload) -> "CampaignConfig":
        """Build a validated config from a JSON payload (service job specs).

        Unknown keys raise :class:`repro.errors.InputError` — a client
        sending a knob this build does not have must hear about it rather
        than silently run with defaults.
        """
        from repro.errors import InputError

        if not isinstance(payload, dict):
            raise InputError(
                f"config must be a JSON object, got {type(payload).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise InputError(
                f"unknown config field(s): {', '.join(unknown)}",
                hint="known fields: " + ", ".join(sorted(known - {'batch_lanes'})),
            )
        kwargs = dict(payload)
        if "delay_fractions" in kwargs and kwargs["delay_fractions"] is not None:
            kwargs["delay_fractions"] = tuple(kwargs["delay_fractions"])
        try:
            return cls(**kwargs)
        except (TypeError, ValueError) as exc:
            raise InputError(f"invalid campaign configuration: {exc}") from exc


class CampaignSession:
    """Shared golden-run state for one (system, program) pair.

    The golden state normally needs two full runs: a *probe* pass to learn
    the cycle count (the equally spaced injection cycles depend on it) and an
    instrumented pass recording fingerprints + checkpoints at those cycles.
    The probe is skipped whenever the workload's fault-free length is already
    known — from an earlier session on the same system object (in-process
    memo) or from a persistent verdict cache's workload metadata — and the
    instrumented run is then verified against the recorded observables
    instead of a fresh probe.  The remaining double-run case is the first
    cold session for a (system, program) pair, where the checkpoint positions
    genuinely cannot be known before a full run has measured the length.

    Everything is materialized lazily: constructing a session runs nothing.
    ``total_cycles``/``sampled_cycles`` resolve from the memo or cache
    metadata (falling back to the probe run), and the instrumented golden run
    plus the analyzers that need it appear on first use.  A campaign served
    entirely from the persistent record cache therefore never simulates at
    all — which is what makes warm worker processes cheap.
    """

    def __init__(
        self,
        system,
        program: Program,
        config: CampaignConfig,
        telemetry: Optional[CampaignTelemetry] = None,
        verdict_cache=None,
        _internal: bool = False,
        allow_legacy: bool = False,
    ):
        if not (_internal or allow_legacy):
            raise TypeError(
                "Constructing CampaignSession directly is no longer "
                "supported (the deprecation cycle ended): use the repro.api "
                "facade (repro.api.analyze / repro.api.sweep) or "
                "DelayAVFEngine, which manage the session for you, or pass "
                "allow_legacy=True to opt into the unsupported path."
            )
        self.system = system
        self.program = program
        self.config = config
        self.telemetry = telemetry if telemetry is not None else CampaignTelemetry()
        self.verdict_cache = verdict_cache
        if verdict_cache is not None:
            verdict_cache.attach_telemetry(self.telemetry)

        memo = getattr(system, "_workload_memo", None)
        if memo is None:
            memo = {}
            system._workload_memo = memo
        self._memo = memo
        self._psig = program_signature(program)
        self._lengths = (
            LengthStore(config.cache_dir) if config.cache_dir else None
        )
        self._total_cycles: Optional[int] = None
        self._sampled_cycles: Optional[List[int]] = None
        self._golden: Optional[RunResult] = None
        self._static: Optional[StaticReachability] = None
        self._dynamic: Optional[DynamicReachability] = None
        self._group_ace: Optional[GroupAceAnalyzer] = None
        self._orace: Optional[OraceAnalyzer] = None
        self._evaluator: Optional[DelayAceEvaluator] = None
        self._waveforms: Dict[int, CycleWaveforms] = {}

    # ------------------------------------------------------------------
    def _known_length(self):
        """``(cycles, observables, digest, source)`` known without running.

        Sources, most to least authoritative: the in-process memo
        (``"memo"``), a persistent verdict cache's workload metadata
        (``"cache"``), the cache directory's cross-scope length store
        (``"store"``, :class:`repro.workloads.lengths.LengthStore`), and
        the bundled measured-length table (``"hint"``,
        :mod:`repro.workloads.lengths`).  The first two are measured on
        this exact setup and treated as invariants; a store entry or hint
        is advisory and verified (with graceful fallback) by
        :attr:`golden`.
        """
        if self._psig in self._memo:
            cycles, observables = self._memo[self._psig]
            return cycles, observables, None, "memo"
        if self.verdict_cache is not None:
            meta = self.verdict_cache.workload_meta()
            if meta is not None and meta[0] <= self.config.max_run_cycles:
                return meta[0], None, meta[1], "cache"
        if self._lengths is not None:
            stored = self._lengths.get(self._psig)
            if stored is not None and stored[0] <= self.config.max_run_cycles:
                return stored[0], None, stored[1], "store"
        hint = known_length(self._psig)
        if hint is not None and hint <= self.config.max_run_cycles:
            return hint, None, None, "hint"
        return None, None, None, None

    def _record_workload(self, run: RunResult) -> None:
        self._memo[self._psig] = (run.cycles, run.observables)
        if self.verdict_cache is not None:
            self.verdict_cache.record_workload(run.cycles, run.observables)
        if self._lengths is not None:
            self._lengths.put(
                self._psig, run.cycles, observables_digest(run.observables)
            )

    def _halt_error(self) -> RuntimeError:
        return RuntimeError(
            f"workload {self.program.name!r} did not halt within "
            f"{self.config.max_run_cycles} cycles"
        )

    @property
    def total_cycles(self) -> int:
        if self._total_cycles is None:
            known, _, _, source = self._known_length()
            if known is None:
                # Pass 1 (cold only): plain probe run to learn the length.
                with self.telemetry.timer("golden"), tracing.span(
                    "session.probe_run", cat="session",
                    benchmark=self.program.name,
                ):
                    self.telemetry.incr("probe_runs")
                    probe = self.system.run_program(
                        self.program, max_cycles=self.config.max_run_cycles
                    )
                if not probe.halted:
                    raise self._halt_error()
                self._record_workload(probe)
                known = probe.cycles
            else:
                self.telemetry.incr("probe_skips")
                if source == "hint":
                    self.telemetry.incr("length_hint_hits")
                elif source == "store":
                    self.telemetry.incr("length_store_hits")
            self._total_cycles = known
        return self._total_cycles

    @property
    def sampled_cycles(self) -> List[int]:
        if self._sampled_cycles is None:
            self._sampled_cycles = sample_cycles(
                self.total_cycles,
                count=self.config.cycle_count,
                fraction=self.config.cycle_fraction,
                warmup=self.config.warmup_cycles,
            )
        return self._sampled_cycles

    def _instrumented_run(self) -> RunResult:
        """One fingerprinting + checkpointing pass over the workload."""
        return self._instrumented_run_at(self.sampled_cycles)

    @property
    def golden(self) -> RunResult:
        if self._golden is None:
            expected = self.total_cycles  # may probe (cold start)
            _, known_observables, known_digest, source = self._known_length()
            # Pass 2: record fingerprints + checkpoints at the sampled cycles.
            golden = self._instrumented_run()
            if golden.cycles != expected and source in ("hint", "store"):
                # Stale advisory length (bundled hint or cross-scope store
                # entry): the instrumented run itself measured the true
                # length, but its checkpoints sit at positions sampled from
                # the wrong length.  Re-sample and re-run — a stale entry
                # costs exactly what the probe used to.
                self.telemetry.incr("stale_length_hints")
                self._total_cycles = golden.cycles
                self._sampled_cycles = None
                self._record_workload(golden)
                expected = golden.cycles
                known_observables = golden.observables
                known_digest = None
                golden = self._instrumented_run()
            # Verify against whatever we know: the probe's observables (cold)
            # or the memoized/persisted golden behaviour (warm start).
            assert golden.cycles == expected
            if known_observables is not None:
                assert golden.observables == known_observables
            elif known_digest is not None:
                assert observables_digest(golden.observables) == known_digest
            self._record_workload(golden)
            self._golden = golden
        return self._golden

    def adopt_golden(self, golden: RunResult) -> bool:
        """Install an externally computed golden run (the packed path).

        Applies the same verification the scalar :attr:`golden` property
        does — cycle count against the known workload length, observables
        against the memo/persisted digest.  Returns ``False`` (and installs
        nothing) when the run cannot be trusted, e.g. a stale bundled length
        hint: the caller simply leaves the session to its scalar path, which
        re-samples and re-runs.  ``True`` when the session already has a
        golden run or *golden* was verified and installed.
        """
        if self._golden is not None:
            return True
        if not golden.halted:
            raise self._halt_error()
        expected, known_observables, known_digest, _ = self._known_length()
        if expected is None or golden.cycles != expected:
            return False
        if (
            known_observables is not None
            and golden.observables != known_observables
        ):
            return False
        if (
            known_digest is not None
            and observables_digest(golden.observables) != known_digest
        ):
            return False
        self._record_workload(golden)
        self._golden = golden
        self.telemetry.incr("golden_runs")
        return True

    # ------------------------------------------------------------------
    @property
    def static(self) -> StaticReachability:
        if self._static is None:
            self._static = StaticReachability(self.system.sta)
        return self._static

    @property
    def dynamic(self) -> DynamicReachability:
        if self._dynamic is None:
            self._dynamic = DynamicReachability(
                self.system.event_sim, self.static, telemetry=self.telemetry
            )
        return self._dynamic

    @property
    def group_ace(self) -> GroupAceAnalyzer:
        if self._group_ace is None:
            self._group_ace = GroupAceAnalyzer(
                self.system,
                self.program,
                self.golden,
                margin_cycles=self.config.margin_cycles,
                verdict_cache=self.verdict_cache,
                telemetry=self.telemetry,
            )
        return self._group_ace

    @property
    def orace(self) -> OraceAnalyzer:
        if self._orace is None:
            self._orace = OraceAnalyzer(self.group_ace)
        return self._orace

    @property
    def evaluator(self) -> DelayAceEvaluator:
        if self._evaluator is None:
            self._evaluator = DelayAceEvaluator(
                self.static,
                self.dynamic,
                self.group_ace,
                self.orace,
                telemetry=self.telemetry,
            )
        return self._evaluator

    def ensure_checkpoints(self, cycles: Sequence[int]) -> None:
        """Guarantee golden checkpoints exist at every cycle in *cycles*.

        Adaptive refinement widens the cycle sample after the instrumented
        golden run was recorded, so the new cycles have no checkpoints yet.
        One extra instrumented pass over the *union* of checkpoint positions
        repairs that; the fresh run is verified cycle- and observable-
        identical before it replaces the old one.  The analyzers keep only
        invariant golden data (length, fingerprints, observables), so they
        carry over untouched — and so do their §V-C caches.
        """
        missing = sorted(set(cycles) - set(self.golden.checkpoints))
        if not missing:
            return
        union = sorted(set(self.golden.checkpoints) | set(missing))
        fresh = self._instrumented_run_at(union)
        assert fresh.cycles == self.golden.cycles
        assert fresh.observables == self.golden.observables
        self._golden = fresh

    def _instrumented_run_at(self, checkpoint_cycles: Sequence[int]) -> RunResult:
        with self.telemetry.timer("golden"), tracing.span(
            "session.golden_run", cat="session",
            benchmark=self.program.name, checkpoints=len(checkpoint_cycles),
        ):
            self.telemetry.incr("golden_runs")
            golden = self.system.run_program(
                self.program,
                max_cycles=self.config.max_run_cycles,
                checkpoint_cycles=checkpoint_cycles,
                record_fingerprints=True,
            )
        if not golden.halted:
            raise self._halt_error()
        return golden

    def checkpoint(self, cycle: int) -> Checkpoint:
        if cycle not in self.golden.checkpoints:
            self.ensure_checkpoints([cycle])
        return self.golden.checkpoints[cycle]

    def waveforms(self, cycle: int) -> CycleWaveforms:
        """Fault-free event-simulated waveforms of one sampled cycle."""
        waves = self._waveforms.get(cycle)
        if waves is None:
            with self.telemetry.timer("waveforms"), tracing.span(
                "session.waveforms", cat="session", cycle=cycle
            ):
                ckpt = self.checkpoint(cycle)
                waves = self.system.event_sim.simulate_cycle(
                    ckpt.prev_settled, ckpt.dff_values, ckpt.input_values, cycle=cycle
                )
            self.telemetry.incr("waveforms_built")
            self._waveforms[cycle] = waves
        return waves


class DelayAVFEngine:
    """Runs DelayAVF campaigns for one workload on one system.

    The engine owns the session and orchestrates plan → execute → merge.  To
    run campaigns on a process pool (``config.jobs > 1`` or an explicit
    :class:`ParallelExecutor`), construct the engine from a picklable
    :class:`SessionSpec` via :meth:`from_spec` so workers can rebuild the
    session.
    """

    def __init__(
        self,
        system,
        program: Program,
        config: Optional[CampaignConfig] = None,
        spec: Optional[SessionSpec] = None,
    ):
        self.config = config if config is not None else CampaignConfig()
        self.spec = spec
        if self.config.trace:
            # Enable before anything expensive so session bootstrap (probe /
            # golden runs) is captured too.  No reset: an api/CLI layer may
            # already have primed the buffer.
            tracing.enable()
        if self.config.preflight:
            # Fail fast on bad inputs — before the cache is opened, before
            # any golden run, and long before any shard executes.
            ensure_preflight(preflight_campaign(system, program, self.config))
        self.verdict_cache = open_configured_cache(system, program, self.config)
        self.session = CampaignSession(
            system,
            program,
            self.config,
            verdict_cache=self.verdict_cache,
            _internal=True,
        )
        self.telemetry = self.session.telemetry
        self._executor: Optional[Executor] = None
        # Resolve the workload length up front: free on warm starts (memo or
        # cache metadata) and fails fast on non-halting workloads when cold.
        self.session.total_cycles

    @classmethod
    def from_spec(cls, spec: SessionSpec) -> "DelayAVFEngine":
        """Build the engine (and its system) from a picklable spec."""
        return cls(spec.build_system(), spec.program, spec.config, spec=spec)

    @property
    def system(self):
        return self.session.system

    @property
    def program(self) -> Program:
        return self.session.program

    # ------------------------------------------------------------------
    def default_executor(self) -> Executor:
        """The executor selected by the config (kept across campaigns).

        ``workers_from`` wins over ``jobs``: a distributed fleet subsumes a
        local pool.  The remote executor is the process-wide shared instance
        for its address (one listener per address, however many engines), so
        ``close()`` on this engine leaves the fleet up for its siblings.
        """
        if self._executor is None:
            if self.config.workers_from:
                from repro.distrib.coordinator import shared_remote_executor

                self._executor = shared_remote_executor(
                    self.config.workers_from,
                    shard_timeout=self.config.shard_timeout,
                    max_retries=self.config.max_retries,
                    retry_backoff=self.config.retry_backoff,
                    worker_wait_seconds=self.config.worker_wait_seconds,
                    breaker_threshold=self.config.breaker_threshold,
                    breaker_reset_seconds=self.config.breaker_reset_seconds,
                )
            elif self.config.jobs > 1:
                self._executor = ParallelExecutor(
                    self.config.jobs,
                    shard_timeout=self.config.shard_timeout,
                    max_retries=self.config.max_retries,
                    retry_backoff=self.config.retry_backoff,
                    max_pool_rebuilds=self.config.max_pool_rebuilds,
                )
            else:
                self._executor = SerialExecutor()
        return self._executor

    def close(self) -> None:
        """Shut down any worker pool and flush the verdict cache."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None
        if self.verdict_cache is not None:
            self.verdict_cache.flush()

    # ------------------------------------------------------------------
    def run_structure(
        self,
        structure: str,
        delay_fractions: Optional[Sequence[float]] = None,
        max_wires: Optional[int] = None,
        seed: Optional[int] = None,
        executor: Optional[Executor] = None,
        resume: Optional[bool] = None,
        reporter: Optional[ProgressReporter] = None,
    ) -> StructureCampaignResult:
        """Estimate DelayAVF of *structure* across the delay sweep.

        The plan orders shards cycle-outermost so the fault-free waveforms
        and GroupACE caches are reused maximally (the paper's §V-C caching);
        the executor (serial by default, process-pool when ``config.jobs >
        1`` or passed explicitly) decides where shards run.  Results merge
        deterministically by (cycle, wire, delay), so every executor yields
        identical records.

        With *resume* (default ``config.resume``; needs a persistent verdict
        cache) shards the cache marks complete are reassembled from the
        record table instead of executed, so an interrupted campaign picks
        up from its last incrementally-flushed shard.  The result's
        ``degraded`` flag reports whether fault-tolerant execution had to
        recycle the worker pool or fall back to serial shards on the way.
        """
        resume = self.config.resume if resume is None else bool(resume)
        before = self.telemetry.snapshot()
        started = time.perf_counter()
        if reporter is None:
            reporter = self._make_reporter(structure)
        with tracing.span(
            "campaign.run", cat="campaign",
            structure=structure, benchmark=self.program.name,
        ):
            with self.telemetry.timer("plan"):
                plan = build_plan(
                    structure,
                    self.program.name,
                    self.system.structure_wires(structure),
                    self.session.sampled_cycles,
                    self.config,
                    delay_fractions=delay_fractions,
                    max_wires=max_wires,
                    seed=seed,
                )
            executor = executor if executor is not None else self.default_executor()
            result = self._execute_plan(plan, executor, resume, reporter)
            self._finalize(result, before, started)
        if reporter is not None:
            reporter.finish("degraded" if result.degraded else "done")
        return result

    def run_structures(
        self,
        structures: Sequence[str],
        delay_fractions: Optional[Sequence[float]] = None,
        max_wires: Optional[int] = None,
        seed: Optional[int] = None,
        resume: Optional[bool] = None,
    ) -> Dict[str, StructureCampaignResult]:
        """Run several structures' campaigns with one shared packed prefetch.

        One engine serves every structure of its benchmark, and GroupACE/
        ORACE resolution is timing-agnostic, so the forward simulations of
        *all* the campaigns pack into the same 64-lane words: each campaign
        alone rarely fills a word, and every extra batch costs a full
        program-length simulation.  Records are byte-identical to sequential
        :meth:`run_structure` calls — only the packing changes.

        Falls back to sequential :meth:`run_structure` calls when lane
        packing is off (``lanes=1``) or shards run on a worker pool
        (``jobs > 1``; workers pack per-shard instead).  Because the
        prefetch is shared, the per-campaign ``campaign`` wall-clock slices
        overlap: the shared prefetch seconds are reported once, not split
        per structure.
        """
        structures = list(structures)
        if (
            self.config.lane_width <= 1
            or self.config.jobs > 1
            or self.config.workers_from
        ):
            return {
                structure: self.run_structure(
                    structure,
                    delay_fractions=delay_fractions,
                    max_wires=max_wires,
                    seed=seed,
                    resume=resume,
                )
                for structure in structures
            }
        staged = self._stage_structures(
            structures, delay_fractions, max_wires, seed, resume
        )
        queries = []
        for stage in staged:
            queries.extend(plan_queries(self.session, stage.prepared))
        lanes = self.config.lane_width
        if queries:
            with tracing.span(
                "campaign.prefetch", cat="executor",
                queries=len(queries), lanes=lanes, structures=len(staged),
            ):
                with self.telemetry.timer("prefetch"):
                    self.session.group_ace.prefetch_spanning(
                        queries, lanes=lanes
                    )
        return self._finish_staged(staged)

    def _stage_structures(
        self,
        structures: Sequence[str],
        delay_fractions=None,
        max_wires=None,
        seed=None,
        resume=None,
    ) -> List["_StagedCampaign"]:
        """Plan, resume-split, and prepare every structure's shards."""
        resume_flag = self.config.resume if resume is None else bool(resume)
        with_orace = bool(self.config.compute_orace)
        clock = self.system.clock_period
        staged: List[_StagedCampaign] = []
        for structure in structures:
            before = self.telemetry.snapshot()
            started = time.perf_counter()
            reporter = self._make_reporter(structure)
            with tracing.span(
                "campaign.prepare", cat="campaign",
                structure=structure, benchmark=self.program.name,
            ):
                with self.telemetry.timer("plan"):
                    plan = build_plan(
                        structure,
                        self.program.name,
                        self.system.structure_wires(structure),
                        self.session.sampled_cycles,
                        self.config,
                        delay_fractions=delay_fractions,
                        max_wires=max_wires,
                        seed=seed,
                    )
                resumed: List = []
                exec_plan = plan
                if resume_flag and self.verdict_cache is not None:
                    resumed, remaining = self._split_resumable(
                        plan, with_orace, clock
                    )
                    if resumed:
                        self.telemetry.incr("shards_resumed", len(resumed))
                        exec_plan = dataclasses.replace(
                            plan, shards=tuple(remaining)
                        )
                if reporter is not None:
                    reporter.start(len(plan.shards), resumed=len(resumed))
                prepared = prepare_plan_shards(self.session, exec_plan)
            staged.append(
                _StagedCampaign(
                    engine=self, structure=structure, plan=plan,
                    exec_plan=exec_plan, prepared=prepared, resumed=resumed,
                    before=before, started=started, reporter=reporter,
                )
            )
        return staged

    def _finish_staged(
        self, staged: Sequence["_StagedCampaign"]
    ) -> Dict[str, StructureCampaignResult]:
        """Evaluate, merge, persist, and finalize staged campaigns."""
        results: Dict[str, StructureCampaignResult] = {}
        for stage in staged:
            with tracing.span(
                "campaign.run", cat="campaign",
                structure=stage.structure, benchmark=self.program.name,
                grouped=True,
            ):
                with self.telemetry.timer("execute"):
                    shard_results = evaluate_prepared_shards(
                        self.session, stage.exec_plan, stage.prepared,
                        progress=stage.reporter,
                    )
                with self.telemetry.timer("merge"), tracing.span(
                    "campaign.merge", cat="campaign", structure=stage.structure
                ):
                    result = merge_shard_results(
                        stage.plan, shard_results + stage.resumed
                    )
                self._persist_result(stage.plan, result)
                self._finalize(result, stage.before, stage.started)
            if stage.reporter is not None:
                stage.reporter.finish("done")
            results[stage.structure] = result
        return results

    def run_structure_adaptive(
        self,
        structure: str,
        target_half_width: float,
        *,
        confidence: float = DEFAULT_CONFIDENCE,
        delay_fractions: Optional[Sequence[float]] = None,
        max_wires: Optional[int] = None,
        seed: Optional[int] = None,
        executor: Optional[Executor] = None,
        resume: Optional[bool] = None,
        max_rounds: Optional[int] = None,
        growth: Optional[float] = None,
        reporter: Optional[ProgressReporter] = None,
    ) -> StructureCampaignResult:
        """Run a campaign, then refine it until its CIs meet a precision
        target.

        After the initial wave (identical to :meth:`run_structure`), each
        round checks the widest Wilson interval across the delay sweep
        (DelayAVF and, when computed, OrDelayAVF).  While it exceeds
        *target_half_width*, the wire/cycle sample is widened — wires first
        (their cycles' waveforms are already warm), then cycles — by the
        factor :func:`repro.core.stats.required_samples` predicts, capped at
        *growth* per round.  Refinement plans cover exactly the not-yet-
        sampled (wire, cycle) pairs, so no (wire, cycle, delay) triple is
        ever simulated twice; with a verdict cache configured the rounds
        persist and resume like any other shards.

        Stops at the target, after *max_rounds* refinement rounds, or when
        the structure's full (wire × cycle) population is exhausted —
        whichever comes first.  ``telemetry`` reports ``refinement_rounds``,
        ``extra_shards``, and the final ``ci_half_width`` gauge.
        """
        if target_half_width <= 0.0:
            raise ValueError("target_half_width must be > 0")
        resume = self.config.resume if resume is None else bool(resume)
        max_rounds = (
            self.config.refine_max_rounds if max_rounds is None else max_rounds
        )
        growth_cap = self.config.refine_growth if growth is None else growth
        executor = executor if executor is not None else self.default_executor()
        base_seed = self.config.seed if seed is None else seed
        before = self.telemetry.snapshot()
        started = time.perf_counter()
        if reporter is None:
            reporter = self._make_reporter(structure)
        with tracing.span(
            "campaign.run", cat="campaign",
            structure=structure, benchmark=self.program.name, adaptive=True,
        ):
            with self.telemetry.timer("plan"):
                plan = build_plan(
                    structure,
                    self.program.name,
                    self.system.structure_wires(structure),
                    self.session.sampled_cycles,
                    self.config,
                    delay_fractions=delay_fractions,
                    max_wires=max_wires,
                    seed=seed,
                )
            result = self._execute_plan(plan, executor, resume, reporter)
            for round_index in range(1, max_rounds + 1):
                worst = self._worst_interval(result, confidence)
                if reporter is not None:
                    reporter.refinement(
                        round_index - 1, worst.half_width, target_half_width
                    )
                if worst.half_width <= target_half_width:
                    break
                with self.telemetry.timer("refine"):
                    new_wires, new_cycles = self._plan_growth(
                        plan, worst, target_half_width, confidence, growth_cap,
                        structure, base_seed, round_index,
                    )
                if not new_wires and not new_cycles:
                    break  # full population sampled; as tight as it gets
                if new_cycles:
                    self.session.ensure_checkpoints(new_cycles)
                with self.telemetry.timer("plan"):
                    refinement = build_refinement_plan(plan, new_wires, new_cycles)
                self.telemetry.incr("refinement_rounds")
                self.telemetry.incr("extra_shards", len(refinement.shards))
                round_result = self._execute_plan(
                    refinement, executor, resume, reporter
                )
                for delay, delay_result in round_result.by_delay.items():
                    result.by_delay[delay].records.extend(delay_result.records)
                plan = dataclasses.replace(
                    plan,
                    wire_indices=refinement.wire_indices,
                    sampled_cycles=refinement.sampled_cycles,
                )
                result.sampled_wires = len(plan.wire_indices)
                result.sampled_cycles = plan.sampled_cycles
            final_half_width = self._worst_interval(result, confidence).half_width
            self.telemetry.set_gauge("ci_half_width", final_half_width)
            if reporter is not None:
                reporter.set_half_width(final_half_width)
            self._finalize(result, before, started)
        if reporter is not None:
            reporter.finish("degraded" if result.degraded else "done")
        return result

    # ------------------------------------------------------------------
    def _worst_interval(
        self, result: StructureCampaignResult, confidence: float
    ) -> ConfidenceInterval:
        """The widest interval the campaign currently reports."""
        worst = None
        for delay_result in result.by_delay.values():
            candidates = [delay_result.delay_avf_ci(confidence)]
            if self.config.compute_orace:
                candidates.append(delay_result.or_delay_avf_ci(confidence))
            for interval in candidates:
                if worst is None or interval.half_width > worst.half_width:
                    worst = interval
        assert worst is not None  # by_delay is never empty
        return worst

    def _plan_growth(
        self,
        plan,
        worst: ConfidenceInterval,
        target_half_width: float,
        confidence: float,
        growth_cap: float,
        structure: str,
        base_seed: int,
        round_index: int,
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Pick the new wires and cycles for one refinement round.

        Sizes the round from the Wilson-width inversion (clamped to
        [1.25, *growth_cap*] so rounds neither stall nor explode), then
        allocates the growth to wires before cycles: new wires reuse the
        already-built waveforms and checkpoints of every sampled cycle,
        while each new cycle costs a waveform build and a checkpoint run.
        """
        n_now = max(worst.samples, 1)
        needed = required_samples(
            round(worst.point * worst.samples), worst.samples,
            target_half_width, confidence,
        )
        factor = min(max(needed / n_now, 1.25), growth_cap)
        cur_wires = len(plan.wire_indices)
        cur_cycles = len(plan.sampled_cycles)
        usable_cycles = self.session.total_cycles - self.config.warmup_cycles
        desired = min(
            math.ceil(factor * n_now), plan.wire_count * usable_cycles
        )
        if desired <= cur_wires * cur_cycles:
            return (), ()
        want_wires = min(math.ceil(desired / cur_cycles), plan.wire_count)
        new_wires = extend_index_sample(
            plan.wire_count,
            plan.wire_indices,
            want_wires - cur_wires,
            f"{structure}:{base_seed}:{round_index}",
        )
        wires_after = cur_wires + len(new_wires)
        want_cycles = min(math.ceil(desired / wires_after), usable_cycles)
        new_cycles = extend_cycle_sample(
            self.session.total_cycles,
            plan.sampled_cycles,
            want_cycles - cur_cycles,
            self.config.warmup_cycles,
        )
        return tuple(new_wires), tuple(new_cycles)

    def _make_reporter(self, structure: str) -> Optional[ProgressReporter]:
        """A progress reporter when any liveness channel is configured."""
        if not (self.config.progress or self.config.metrics_out):
            return None
        heartbeat = None
        if self.config.metrics_out:
            heartbeat = Heartbeat(
                heartbeat_path(self.config.metrics_out),
                min_interval=self.config.heartbeat_seconds,
            )
        return ProgressReporter(
            enabled=bool(self.config.progress),
            heartbeat=heartbeat,
            label=f"{self.program.name}/{structure}",
        )

    def _execute_plan(
        self, plan, executor: Executor, resume: bool, reporter=None
    ) -> StructureCampaignResult:
        """Resume-split, execute, merge, and persist one plan."""
        with_orace = bool(self.config.compute_orace)
        clock = self.system.clock_period
        resumed: List = []
        exec_plan = plan
        if resume and self.verdict_cache is not None:
            resumed, remaining = self._split_resumable(plan, with_orace, clock)
            if resumed:
                self.telemetry.incr("shards_resumed", len(resumed))
                exec_plan = dataclasses.replace(plan, shards=tuple(remaining))
        if reporter is not None:
            # First wave starts the counters (resumed shards count as done);
            # refinement waves only grow the budget.
            if reporter.state == "idle":
                reporter.start(len(plan.shards), resumed=len(resumed))
            else:
                reporter.add_total(len(exec_plan.shards))
        with self.telemetry.timer("execute"), tracing.span(
            "campaign.execute", cat="campaign",
            structure=plan.structure, shards=len(exec_plan.shards),
        ):
            shard_results = (
                list(
                    executor.execute(
                        exec_plan,
                        session=self.session,
                        spec=self.spec,
                        progress=reporter,
                    )
                )
                if exec_plan.shards
                else []
            )
        with self.telemetry.timer("merge"), tracing.span(
            "campaign.merge", cat="campaign", structure=plan.structure
        ):
            result = merge_shard_results(plan, shard_results + resumed)
        # Worker telemetry arrives as per-shard snapshot deltas; fold it into
        # the session-wide telemetry, then report this campaign's slice.
        # Worker trace buffers ride along the same way.
        for shard_result in shard_results:
            if shard_result.telemetry is not None:
                self.telemetry.merge_snapshot(shard_result.telemetry)
            tracing.extend(shard_result.spans)
        self._persist_result(plan, result)
        return result

    def _persist_result(self, plan, result: StructureCampaignResult) -> None:
        """Write a merged campaign's records and shard markers to the cache.

        Worker flushes already wrote records shard-by-shard, but persisting
        from the owning process too guarantees a complete record table even
        if a worker died mid-campaign.
        """
        if self.verdict_cache is None:
            return
        with_orace = bool(self.config.compute_orace)
        clock = self.system.clock_period
        for delay, delay_result in result.by_delay.items():
            for record in delay_result.records:
                self.verdict_cache.put_record(
                    record_key(
                        plan.structure, record.cycle, record.wire_index,
                        delay, with_orace, clock,
                    ),
                    record_to_payload(record),
                )
        for shard in plan.shards:
            self.verdict_cache.mark_shard_complete(
                shard_key(
                    plan.structure, shard.cycle, shard.wire_indices,
                    shard.delay_fractions, with_orace, clock,
                )
            )
        # Coverage extraction is pure bookkeeping over the already-merged
        # records; persist the vector alongside them so coverage-directed
        # selection can read it back without re-running the campaign.
        from repro.core.coverage import coverage_from_result, coverage_key_for_plan

        vector = coverage_from_result(result)
        self.verdict_cache.put_coverage(
            coverage_key_for_plan(plan, clock), vector.to_payload()
        )
        self.telemetry.incr("coverage_vectors")
        self.verdict_cache.flush()

    def _finalize(
        self, result: StructureCampaignResult, before, started: Optional[float] = None
    ) -> None:
        """Guard-check the merged result and attach its telemetry slice."""
        if self.config.guards:
            with self.telemetry.timer("guards"), tracing.span(
                "campaign.guards", cat="campaign", structure=result.structure
            ):
                apply_guards(result, self.telemetry)
        if started is not None:
            # End-to-end campaign wall-clock, recorded last so it bounds every
            # other phase's wall column in the result's telemetry slice.
            self.telemetry.add_seconds("campaign", time.perf_counter() - started)
        # Lane-occupancy gauges, recomputed from this campaign's slice of the
        # merged (coordinator + worker) counters: how full the packed words
        # actually ran.
        before_counters = before.get("counters", {})

        def campaign_count(name: str) -> int:
            return self.telemetry.count(name) - before_counters.get(name, 0)

        slots = campaign_count("packed_cone_lane_slots")
        if slots:
            self.telemetry.set_gauge(
                "packed_lane_occupancy",
                campaign_count("packed_cone_lanes") / slots,
            )
        ace_slots = campaign_count("lane_slots")
        if ace_slots:
            self.telemetry.set_gauge(
                "group_ace_lane_occupancy",
                campaign_count("lanes_filled") / ace_slots,
            )
        # The coordinator session's shared EvalPlan program cache (satellite
        # of the bounded-memoization work: observable size + evictions).
        plan_obj = getattr(self.session.system, "plan", None)
        if plan_obj is not None and hasattr(plan_obj, "program_cache_size"):
            self.telemetry.set_gauge(
                "eval_programs_cached", float(plan_obj.program_cache_size)
            )
            self.telemetry.set_gauge(
                "eval_program_evictions",
                float(plan_obj.program_cache_evictions),
            )
        result.telemetry = CampaignTelemetry.from_snapshot(
            self.telemetry.diff(before)
        )
        result.degraded = any(
            result.telemetry.count(counter)
            for counter in (
                "shard_timeouts",
                "pool_rebuilds",
                "serial_fallbacks",
                "remote_workers_evicted",
            )
        )
        if self.config.metrics_out:
            write_metrics(
                self.config.metrics_out,
                result.telemetry,
                labels={
                    "structure": result.structure,
                    "benchmark": result.benchmark,
                },
                extra={
                    "degraded": bool(result.degraded),
                    "suspect": bool(result.suspect),
                },
            )

    # ------------------------------------------------------------------
    def _split_resumable(self, plan, with_orace: bool, clock: float):
        """Partition the plan into cache-reassembled and still-to-run shards.

        A shard resumes only if its completion mark *and* every one of its
        records survived in the cache; a mark whose records were lost (torn
        file recovered cold, for instance) silently re-executes.
        """
        cache = self.verdict_cache
        resumed: List[ShardResult] = []
        remaining = []
        for shard in plan.shards:
            loaded = None
            if cache.shard_complete(
                shard_key(
                    plan.structure, shard.cycle, shard.wire_indices,
                    shard.delay_fractions, with_orace, clock,
                )
            ):
                loaded = self._load_shard_result(plan, shard, with_orace, clock)
            if loaded is None:
                remaining.append(shard)
            else:
                resumed.append(loaded)
        return resumed, remaining

    def _load_shard_result(
        self, plan, shard, with_orace: bool, clock: float
    ) -> Optional[ShardResult]:
        by_delay: Dict[float, List] = {delay: [] for delay in shard.delay_fractions}
        for index in shard.wire_indices:
            for delay in shard.delay_fractions:
                payload = self.verdict_cache.get_record(
                    record_key(plan.structure, shard.cycle, index, delay,
                               with_orace, clock)
                )
                if payload is None:
                    return None
                by_delay[delay].append(
                    record_from_payload(payload, index, shard.cycle, delay)
                )
        return ShardResult(shard_index=shard.index, by_delay=by_delay)

    def estimate(
        self,
        structure: str,
        delay_fraction: float = 0.5,
        max_wires: Optional[int] = 32,
        max_cycles: Optional[int] = None,
        seed: int = 0,
    ) -> DelayAVFResult:
        """Convenience single-delay estimate (used by the quickstart).

        *max_cycles* further restricts the session's sampled cycles (it
        cannot exceed the session's ``cycle_count``).  The returned result is
        a copy restricted to those cycles; the underlying campaign result is
        never mutated.
        """
        campaign = self.run_structure(
            structure, delay_fractions=(delay_fraction,), max_wires=max_wires,
            seed=seed,
        )
        result = campaign.by_delay[delay_fraction]
        if max_cycles is not None:
            result = result.restricted_to_cycles(
                self.session.sampled_cycles[:max_cycles]
            )
        return result


@dataclass
class _StagedCampaign:
    """One structure campaign paused between preparation and evaluation."""

    engine: DelayAVFEngine
    structure: str
    plan: object
    exec_plan: object
    prepared: List
    resumed: List
    before: object
    started: float
    reporter: Optional[ProgressReporter]


def run_structures_spanning(
    runs: Sequence[Tuple[DelayAVFEngine, Sequence[str]]],
) -> List[Dict[str, StructureCampaignResult]]:
    """Run several *engines'* structure campaigns with one packed prefetch.

    The widest packing the lane dimension supports: every workload of one
    SoC runs on the same netlist (programs live in the per-lane
    environments), so the GroupACE resolutions of *all* the campaigns —
    across structures AND workloads — share the same 64-lane words.  Each
    lane converges against its own workload's golden run; records are
    byte-identical to sequential :meth:`DelayAVFEngine.run_structure` calls
    per engine.

    Engines that cannot join a packed group (lane packing off, or a worker
    pool configured) fall back to their own :meth:`run_structures` path;
    engines whose netlists differ (e.g. ECC variants) still batch — the
    packer partitions lanes by netlist internally.  Returns one
    ``{structure: result}`` dict per input engine, in order.
    """
    packed: List[Tuple[int, DelayAVFEngine, Sequence[str]]] = []
    results: List[Optional[Dict[str, StructureCampaignResult]]] = [
        None
    ] * len(runs)
    for index, (engine, structures) in enumerate(runs):
        if (
            engine.config.lane_width <= 1
            or engine.config.jobs > 1
            or engine.config.workers_from
        ):
            results[index] = engine.run_structures(structures)
        else:
            packed.append((index, engine, list(structures)))
    if not packed:
        return results
    # The golden runs themselves are lane-packable: they are plain scalar
    # simulations of the same netlist from reset, one per workload.  Run
    # them as one packed word before staging touches session.golden.
    packed_golden_runs([engine.session for _, engine, _ in packed])
    staged_by_engine: List[Tuple[int, DelayAVFEngine, List[_StagedCampaign]]] = []
    for index, engine, structures in packed:
        staged_by_engine.append(
            (index, engine, engine._stage_structures(structures))
        )
    groups = []
    total_queries = 0
    for _, engine, staged in staged_by_engine:
        queries = []
        for stage in staged:
            queries.extend(plan_queries(engine.session, stage.prepared))
        total_queries += len(queries)
        if queries:
            groups.append((engine.session.group_ace, queries))
    if groups:
        lanes = min(engine.config.lane_width for _, engine, _ in staged_by_engine)
        first_engine = staged_by_engine[0][1]
        with tracing.span(
            "campaign.prefetch", cat="executor",
            queries=total_queries, lanes=lanes, engines=len(groups),
        ):
            with first_engine.telemetry.timer("prefetch"):
                prefetch_spanning_multi(groups, lanes=lanes)
    for index, engine, staged in staged_by_engine:
        results[index] = engine._finish_staged(staged)
    return results


def packed_golden_runs(sessions: Sequence[CampaignSession]) -> None:
    """Run several sessions' golden runs through shared packed words.

    Each eligible session's instrumented golden run — fingerprint every
    cycle, checkpoint at its sampled cycles — is one scalar simulation of
    the shared netlist from reset, so up to :data:`MAX_LANES` of them pack
    into the bit-planes of one word, exactly like injected re-simulations
    do.  Produces per-lane :class:`RunResult`\\ s bit-identical to scalar
    :meth:`CycleSimulator.run` (same fingerprints, same checkpoints
    including ``prev_settled``, same observables) and installs them via
    :meth:`CampaignSession.adopt_golden`.

    A session is eligible only if its workload length is already known
    (memo, cache, or bundled hint) — checkpoint positions are sampled from
    the length, and probing it here would itself cost a scalar run.
    Sessions that are ineligible, already golden, or whose packed run fails
    adoption (stale hint) simply keep their lazy scalar path.  Best-effort
    by design: never changes what a session's golden run contains, only how
    it is computed.
    """
    eligible: List[CampaignSession] = []
    for session in sessions:
        if session._golden is not None:
            continue
        known, _, _, _ = session._known_length()
        if known is None:
            continue
        eligible.append(session)
    by_netlist: Dict[int, List[CampaignSession]] = {}
    for session in eligible:
        by_netlist.setdefault(id(session.system.netlist), []).append(session)
    for group in by_netlist.values():
        for start in range(0, len(group), MAX_LANES):
            _run_packed_golden_chunk(group[start : start + MAX_LANES])


def _run_packed_golden_chunk(chunk: Sequence[CampaignSession]) -> None:
    """One packed word's worth of golden runs, scalar-run-exact per lane.

    Mirrors the scalar :meth:`CycleSimulator.run` loop per lane: at each
    cycle boundary append the state fingerprint, capture a checkpoint if
    the cycle is sampled (``prev_settled`` is the lane's just-settled net
    values — available because :meth:`PackedCycleSimulator.step` leaves the
    settled values of the cycle it latched), then step.  A lane whose
    environment halts (or that hits its ``max_run_cycles`` cap) finalizes
    its result and retires; the word keeps stepping for the rest.
    """
    first = chunk[0]
    with first.telemetry.timer("golden"), tracing.span(
        "session.golden_run_packed", cat="session", workloads=len(chunk),
    ):
        scalar = first.system.simulator()
        psim = PackedCycleSimulator(scalar.netlist, scalar.plan)
        envs = [s.system.make_env(s.program) for s in chunk]
        wanted = [set(s.sampled_cycles) for s in chunk]
        caps = [s.config.max_run_cycles for s in chunk]
        results = [
            RunResult(cycles=0, halted=False, observables=()) for _ in chunk
        ]
        psim.load_reset(envs)
        psim.settle()  # boundary-0 settled values (scalar reset() semantics)
        active = set(range(len(chunk)))
        while active:
            for lane in sorted(active):
                run = results[lane]
                cycle = psim.lane_cycles[lane]
                run.fingerprints.append(psim.lane_fingerprint(lane))
                if cycle in wanted[lane]:
                    run.checkpoints[cycle] = Checkpoint(
                        cycle=cycle,
                        dff_values=psim.lane_dff_values(lane),
                        input_values=dict(psim.lane_inputs[lane]),
                        env_snapshot=envs[lane].snapshot(),
                        prev_settled=psim.lane_settled_values(lane),
                    )
            psim.step()
            for lane in sorted(active):
                halted = envs[lane].halted()
                if halted or psim.lane_cycles[lane] >= caps[lane]:
                    run = results[lane]
                    run.cycles = psim.lane_cycles[lane]
                    run.halted = halted
                    run.observables = envs[lane].observables()
                    active.discard(lane)
                    psim.retire_lane(lane)
    for session, run in zip(chunk, results):
        session.adopt_golden(run)
