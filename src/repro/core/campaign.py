"""Statistical fault-injection campaign engine.

:class:`CampaignSession` owns the expensive per-(system, workload) artefacts
shared across structures and delay sweeps:

- the golden run with per-cycle state fingerprints and checkpoints at the
  sampled injection cycles,
- the fault-free event-driven waveforms of each sampled cycle (computed once
  and reused by every wire and delay examined there),
- the GroupACE and ORACE analyzers with their cross-injection caches.

:class:`DelayAVFEngine` runs structure campaigns on top of a session,
producing :class:`repro.core.results.StructureCampaignResult` records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.delay_model import DEFAULT_DELAY_FRACTIONS
from repro.core.delayavf import DelayAceEvaluator
from repro.core.dynamic_reach import DynamicReachability
from repro.core.group_ace import GroupAceAnalyzer
from repro.core.orace import OraceAnalyzer
from repro.core.results import DelayAVFResult, StructureCampaignResult
from repro.core.sampling import sample_cycles, sample_wires
from repro.core.static_reach import StaticReachability
from repro.isa.assembler import Program
from repro.sim.cyclesim import Checkpoint, RunResult
from repro.sim.eventsim import CycleWaveforms


@dataclass(frozen=True)
class CampaignConfig:
    """Knobs of a statistical campaign.

    The paper's configuration corresponds to ``cycle_fraction=0.04`` and
    ``max_wires=None`` (all wires); the defaults here are laptop-sized.
    """

    delay_fractions: Tuple[float, ...] = DEFAULT_DELAY_FRACTIONS
    cycle_count: Optional[int] = 10  #: number of equally spaced cycles
    cycle_fraction: Optional[float] = None  #: alternative: fraction of cycles
    max_wires: Optional[int] = 48  #: wires sampled per structure (None = all)
    seed: int = 0
    warmup_cycles: int = 2
    margin_cycles: int = 3000  #: extra cycles before declaring a hang (DUE)
    max_run_cycles: int = 200_000
    compute_orace: bool = True
    #: GroupACE runs packed per bit-plane batch (1 disables batching)
    batch_lanes: int = 8


class CampaignSession:
    """Shared golden-run state for one (system, program) pair."""

    def __init__(self, system, program: Program, config: CampaignConfig):
        self.system = system
        self.program = program
        self.config = config
        # Pass 1: plain run to learn the cycle count.
        probe = system.run_program(program, max_cycles=config.max_run_cycles)
        if not probe.halted:
            raise RuntimeError(
                f"workload {program.name!r} did not halt within "
                f"{config.max_run_cycles} cycles"
            )
        self.total_cycles = probe.cycles
        self.sampled_cycles: List[int] = sample_cycles(
            probe.cycles,
            count=config.cycle_count,
            fraction=config.cycle_fraction,
            warmup=config.warmup_cycles,
        )
        # Pass 2: record fingerprints + checkpoints at the sampled cycles.
        self.golden: RunResult = system.run_program(
            program,
            max_cycles=config.max_run_cycles,
            checkpoint_cycles=self.sampled_cycles,
            record_fingerprints=True,
        )
        assert self.golden.cycles == probe.cycles
        assert self.golden.observables == probe.observables

        self.static = StaticReachability(system.sta)
        self.dynamic = DynamicReachability(system.event_sim, self.static)
        self.group_ace = GroupAceAnalyzer(
            system, program, self.golden, margin_cycles=config.margin_cycles
        )
        self.orace = OraceAnalyzer(self.group_ace)
        self.evaluator = DelayAceEvaluator(
            self.static, self.dynamic, self.group_ace, self.orace
        )
        self._waveforms: Dict[int, CycleWaveforms] = {}

    def checkpoint(self, cycle: int) -> Checkpoint:
        return self.golden.checkpoints[cycle]

    def waveforms(self, cycle: int) -> CycleWaveforms:
        """Fault-free event-simulated waveforms of one sampled cycle."""
        waves = self._waveforms.get(cycle)
        if waves is None:
            ckpt = self.checkpoint(cycle)
            waves = self.system.event_sim.simulate_cycle(
                ckpt.prev_settled, ckpt.dff_values, ckpt.input_values, cycle=cycle
            )
            self._waveforms[cycle] = waves
        return waves


class DelayAVFEngine:
    """Runs DelayAVF campaigns for one workload on one system."""

    def __init__(self, system, program: Program, config: Optional[CampaignConfig] = None):
        self.config = config if config is not None else CampaignConfig()
        self.session = CampaignSession(system, program, self.config)

    @property
    def system(self):
        return self.session.system

    @property
    def program(self) -> Program:
        return self.session.program

    # ------------------------------------------------------------------
    def run_structure(
        self,
        structure: str,
        delay_fractions: Optional[Sequence[float]] = None,
        max_wires: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> StructureCampaignResult:
        """Estimate DelayAVF of *structure* across the delay sweep.

        Loops are ordered cycle-outermost so the fault-free waveforms and
        GroupACE caches are reused maximally (the paper's §V-C caching).
        """
        config = self.config
        delays = tuple(
            delay_fractions if delay_fractions is not None else config.delay_fractions
        )
        wires = self.system.structure_wires(structure)
        chosen = sample_wires(
            wires,
            max_wires if max_wires is not None else config.max_wires,
            seed if seed is not None else config.seed,
        )
        wire_indices = {wire: wires.index(wire) for wire in chosen}
        result = StructureCampaignResult(
            structure=structure,
            benchmark=self.program.name,
            wire_count=len(wires),
            sampled_wires=len(chosen),
            sampled_cycles=tuple(self.session.sampled_cycles),
            by_delay={
                d: DelayAVFResult(
                    structure=structure,
                    benchmark=self.program.name,
                    delay_fraction=d,
                )
                for d in delays
            },
        )
        for cycle in self.session.sampled_cycles:
            waves = self.session.waveforms(cycle)
            checkpoint = self.session.checkpoint(cycle)
            if config.batch_lanes > 1:
                self._prefetch_group_ace(waves, checkpoint, chosen, delays)
            for wire in chosen:
                for delay in delays:
                    record = self.session.evaluator.evaluate(
                        waves,
                        checkpoint,
                        wire,
                        wire_indices[wire],
                        delay,
                        with_orace=config.compute_orace,
                    )
                    result.by_delay[delay].records.append(record)
        return result

    def _prefetch_group_ace(self, waves, checkpoint, wires, delays) -> None:
        """Batch-resolve this cycle's GroupACE (and ORACE) queries.

        Collects every dynamically reachable set the evaluation pass will
        need — plus the per-member singleton sets ORACE requires for
        multi-bit errors — and resolves them lane-parallel, so the scalar
        evaluation pass afterwards is pure cache hits.
        """
        session = self.session
        pending = []
        for wire in wires:
            if not waves.toggles(wire.net):
                continue
            for delay in delays:
                errors = session.dynamic.reachable_set(waves, wire, delay)
                if not errors:
                    continue
                pending.append(errors)
                if self.config.compute_orace and len(errors) > 1:
                    pending.extend(
                        {dff: value} for dff, value in errors.items()
                    )
        if pending:
            session.group_ace.prefetch(
                checkpoint, pending, lanes=self.config.batch_lanes
            )

    def estimate(
        self,
        structure: str,
        delay_fraction: float = 0.5,
        max_wires: Optional[int] = 32,
        max_cycles: Optional[int] = None,
        seed: int = 0,
    ) -> DelayAVFResult:
        """Convenience single-delay estimate (used by the quickstart).

        *max_cycles* further restricts the session's sampled cycles (it
        cannot exceed the session's ``cycle_count``).
        """
        campaign = self.run_structure(
            structure, delay_fractions=(delay_fraction,), max_wires=max_wires,
            seed=seed,
        )
        result = campaign.by_delay[delay_fraction]
        if max_cycles is not None:
            kept = set(self.session.sampled_cycles[:max_cycles])
            result.records = [r for r in result.records if r.cycle in kept]
        return result
