"""Particle-strike AVF (sAVF) estimation (Section VI-C).

Classic single-bit-flip fault injection over a structure's state elements,
reusing the campaign session's golden run, checkpoints, and injected-run
machinery (an sAVF injection is simply a singleton state-element error
applied directly at a cycle boundary).
"""

from __future__ import annotations

from typing import Optional

from repro.core import tracing
from repro.core.campaign import CampaignSession
from repro.core.group_ace import Outcome
from repro.core.results import SAVFResult
from repro.core.sampling import sample_wires


class SAVFEngine:
    """Estimates sAVF for stateful structures."""

    def __init__(self, session: CampaignSession):
        self.session = session

    def run_structure(
        self,
        structure: str,
        max_bits: Optional[int] = None,
        seed: int = 0,
        progress=None,
    ) -> SAVFResult:
        """Flip each sampled state bit at each sampled cycle.

        sAVF = (# ACE samples) / (# samples), the sampled form of Eq. 1.
        Raises ``ValueError`` for structures without state elements (the
        paper's decoder/ALU rows exist only in the DelayAVF world).
        *progress*, when given, is a
        :class:`repro.core.progress.ProgressReporter` ticked once per sampled
        cycle (the sAVF loop's natural shard).
        """
        with tracing.span(
            "campaign.savf", cat="campaign",
            structure=structure, benchmark=self.session.program.name,
        ):
            return self._run_structure_body(structure, max_bits, seed, progress)

    def _run_structure_body(
        self,
        structure: str,
        max_bits: Optional[int],
        seed: int,
        progress,
    ) -> SAVFResult:
        system = self.session.system
        scope = system.structures.get(structure, structure)
        dffs = system.netlist.dffs_of_structure(scope)
        if not dffs:
            raise ValueError(
                f"structure {structure!r} has no state elements; "
                "sAVF is undefined for logic-only structures"
            )
        chosen = sample_wires(dffs, max_bits, seed)
        ace = sdc = due = samples = 0
        lanes = self.session.config.lane_width
        if progress is not None:
            progress.start(len(self.session.sampled_cycles))
        for cycle in self.session.sampled_cycles:
            checkpoint = self.session.checkpoint(cycle)
            if lanes > 1:
                self.session.group_ace.prefetch(
                    checkpoint,
                    [
                        {d.index: int(checkpoint.dff_values[d.index]) ^ 1}
                        for d in chosen
                    ],
                    at_next_boundary=False,
                    lanes=lanes,
                )
            for dff in chosen:
                flipped = int(checkpoint.dff_values[dff.index]) ^ 1
                outcome = self.session.group_ace.outcome_of_state_errors(
                    checkpoint, {dff.index: flipped}, at_next_boundary=False
                )
                samples += 1
                if outcome.is_failure:
                    ace += 1
                if outcome is Outcome.SDC:
                    sdc += 1
                elif outcome is Outcome.DUE:
                    due += 1
            if progress is not None:
                progress.shard_done()
        if progress is not None:
            progress.finish()
        return SAVFResult(
            structure=structure,
            benchmark=self.session.program.name,
            samples=samples,
            ace_count=ace,
            sdc_count=sdc,
            due_count=due,
        )
