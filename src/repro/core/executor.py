"""Campaign execution: pluggable executors over planned work shards.

The campaign engine plans a structure campaign into per-cycle
:class:`repro.core.plan.WorkShard` descriptors and hands them to an
:class:`Executor`:

- :class:`SerialExecutor` runs every shard in-process against the engine's
  live :class:`repro.core.campaign.CampaignSession` (the historical
  behaviour, and the default).
- :class:`ParallelExecutor` fans shards out to a ``ProcessPoolExecutor``.
  Each worker rebuilds the session once from a picklable
  :class:`SessionSpec` (system factory + program + config) and then serves
  shards from its warm caches; the pool is kept alive across
  ``run_structure`` calls so consecutive structure campaigns reuse worker
  sessions exactly like the serial engine reuses its one session.

The parallel executor is fault tolerant: shards are submitted as individual
futures with a per-shard timeout and a bounded retry-with-backoff budget; a
worker crash (``BrokenProcessPool``) or a hung shard recycles the pool and
re-submits only the unfinished shards; once the pool-rebuild budget is
exhausted the remaining shards finish in-process on the serial path.  Every
recovery action is counted in campaign telemetry (``shard_retries``,
``shard_timeouts``, ``pool_rebuilds``, ``serial_fallbacks``) so operators
can see that a campaign limped home — but the *records* are unaffected:
shard execution is deterministic and :func:`merge_shard_results` is
order-independent, so a recovered campaign is byte-identical to a clean one.

Shard results are merged deterministically in plan order, so serial and
parallel runs produce identical :class:`StructureCampaignResult` records —
the executors differ only in wall-clock time and telemetry.
"""

from __future__ import annotations

import abc
import atexit
import base64
import importlib
import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import tracing
from repro.core.cache import (
    record_from_payload,
    record_key,
    record_to_payload,
    shard_key,
)
from repro.core.plan import CampaignPlan, WorkShard
from repro.core.results import DelayAVFResult, InjectionRecord, StructureCampaignResult
from repro.core.telemetry import CampaignTelemetry


@dataclass(frozen=True)
class SessionSpec:
    """Everything a worker needs to rebuild a campaign session.

    ``system_factory`` must be picklable by reference (a module-level
    callable, e.g. :func:`repro.soc.system.build_system`); ``factory_kwargs``
    is a tuple of ``(name, value)`` pairs so the spec stays hashable-free but
    comparable and picklable.
    """

    system_factory: Callable[..., Any]
    program: Any  #: :class:`repro.isa.assembler.Program`
    config: Any  #: :class:`repro.core.campaign.CampaignConfig`
    factory_kwargs: Tuple[Tuple[str, Any], ...] = ()

    def build_system(self):
        return self.system_factory(**dict(self.factory_kwargs))

    def build_session(self):
        """Rebuild the full campaign session (golden run, analyzers, cache)."""
        from repro.core.campaign import CampaignSession

        system = self.build_system()
        return CampaignSession(
            system,
            self.program,
            self.config,
            verdict_cache=open_configured_cache(system, self.program, self.config),
            _internal=True,
        )

    # ------------------------------------------------------------------
    # Wire round-trip: the JSON-safe twin of the picklable form, used by
    # the distributed coordinator to ship specs to remote workers that
    # share no process ancestry (and possibly no machine).
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """A JSON-safe dict :meth:`from_payload` rebuilds exactly.

        The factory travels by dotted reference (``module:qualname``) — the
        same by-reference contract pickling already imposes — the program
        image as base64, the config through its own payload round-trip.
        Factory kwarg values must be JSON-representable primitives (the
        existing specs only carry booleans).
        """
        factory = self.system_factory
        return {
            "system_factory": f"{factory.__module__}:{factory.__qualname__}",
            "program": {
                "name": self.program.name,
                "image": base64.b64encode(self.program.image).decode("ascii"),
                "entry": self.program.entry,
                "symbols": dict(self.program.symbols),
            },
            "config": self.config.to_payload(),
            "factory_kwargs": [[name, value] for name, value in self.factory_kwargs],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "SessionSpec":
        """Rebuild a spec from its wire form (inverse of :meth:`to_payload`).

        Trusts its coordinator: the factory reference is imported and
        resolved, exactly as unpickling would.  Workers only ever deserialize
        specs from the coordinator they explicitly connected to.
        """
        from repro.core.campaign import CampaignConfig
        from repro.isa.assembler import Program

        module_name, _, qualname = str(payload["system_factory"]).partition(":")
        factory: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            factory = getattr(factory, part)
        program_payload = payload["program"]
        program = Program(
            name=str(program_payload["name"]),
            image=base64.b64decode(program_payload["image"]),
            entry=int(program_payload.get("entry", 0)),
            symbols={
                str(name): int(addr)
                for name, addr in (program_payload.get("symbols") or {}).items()
            },
        )
        return cls(
            system_factory=factory,
            program=program,
            config=CampaignConfig.from_payload(payload["config"]),
            factory_kwargs=tuple(
                (str(name), value)
                for name, value in payload.get("factory_kwargs") or ()
            ),
        )


def open_configured_cache(system, program, config):
    """The :class:`VerdictCache` named by ``config.cache_dir`` (or ``None``)."""
    if not getattr(config, "cache_dir", None):
        return None
    from repro.core.cache import VerdictCache

    return VerdictCache.open(config.cache_dir, system.netlist, program, config)


@dataclass
class ShardResult:
    """One executed shard: per-delay records plus the worker's telemetry."""

    shard_index: int
    by_delay: Dict[float, List[InjectionRecord]]
    telemetry: Optional[Dict[str, Dict]] = None  #: telemetry snapshot delta
    spans: Optional[List[Dict]] = None  #: trace spans drained from the worker


def shard_result_to_payload(result: ShardResult) -> Dict[str, Any]:
    """The JSON-safe wire form of one executed shard (remote workers).

    Records compress to their derived-field payloads
    (:func:`repro.core.cache.record_to_payload`); identity — wire index,
    cycle, delay — is *not* shipped because the coordinator re-supplies it
    from the shard it dispatched.  Record lists ride in evaluation order
    (wire-outer within each delay), which is exactly the order
    ``shard.wire_indices`` enumerates, so the round-trip is positional and
    lossless.  Telemetry deltas and drained spans are plain dicts already.
    """
    return {
        "shard_index": result.shard_index,
        "records": [
            [record_to_payload(record) for record in records]
            for records in result.by_delay.values()
        ],
        "telemetry": result.telemetry,
        "spans": result.spans,
    }


def shard_result_from_payload(
    payload: Dict[str, Any], shard: WorkShard
) -> ShardResult:
    """Rebuild a :class:`ShardResult` against the shard it answers.

    The inverse of :func:`shard_result_to_payload`: per-delay record lists
    are re-keyed by ``shard.delay_fractions`` (payload order follows the
    shard's declaration order) and each record regains its identity from
    ``shard.wire_indices`` position, the shard's cycle, and its delay.
    """
    record_lists = payload["records"]
    if len(record_lists) != len(shard.delay_fractions):
        raise ValueError(
            f"shard {shard.index}: expected {len(shard.delay_fractions)} "
            f"delay record lists, got {len(record_lists)}"
        )
    by_delay: Dict[float, List[InjectionRecord]] = {}
    for delay, records in zip(shard.delay_fractions, record_lists):
        if len(records) != len(shard.wire_indices):
            raise ValueError(
                f"shard {shard.index}: expected {len(shard.wire_indices)} "
                f"records for delay {delay}, got {len(records)}"
            )
        by_delay[delay] = [
            record_from_payload(record, wire_index, shard.cycle, delay)
            for wire_index, record in zip(shard.wire_indices, records)
        ]
    return ShardResult(
        shard_index=int(payload["shard_index"]),
        by_delay=by_delay,
        telemetry=payload.get("telemetry"),
        spans=payload.get("spans"),
    )


# ----------------------------------------------------------------------
# The shard inner loop (shared verbatim by both executors)
# ----------------------------------------------------------------------
def execute_shard(session, plan: CampaignPlan, shard: WorkShard) -> ShardResult:
    """Run every (wire, delay) injection of one sampled cycle.

    Loops are wire-outer / delay-inner within the shard — combined with the
    plan's cycle-per-shard decomposition this reproduces the legacy engine's
    cycle-outermost §V-C cache-reuse order exactly.

    Completed injections are served from the persistent record cache when one
    is attached; the shard only builds waveforms and checkpoints (the
    expensive timing-aware event simulation) for the injections it actually
    has to evaluate, so a fully warm shard never touches the event simulator.
    Cold injections first flow through the batched timing-aware engine
    (:meth:`DynamicReachability.reachable_set_batch`), which amortizes
    fan-out-cone construction and fault-free waveform slicing across the
    whole cycle before the per-record evaluation loop runs.
    """
    with tracing.span(
        "shard.execute",
        cat="shard",
        structure=plan.structure,
        shard=shard.index,
        cycle=shard.cycle,
        wires=len(shard.wire_indices),
        delays=len(shard.delay_fractions),
    ):
        return _execute_shard_body(session, plan, shard)


@dataclass
class _PreparedShard:
    """A shard's timing-aware pass, paused before GroupACE resolution."""

    shard: WorkShard
    chosen: List[Tuple[int, Any]]  #: (wire index, wire) pairs
    cached: Dict[Tuple[int, float], InjectionRecord]
    waves: Any = None
    checkpoint: Any = None
    reach_sets: List[Dict[int, int]] = None


def _prepare_shard(session, plan: CampaignPlan, shard: WorkShard) -> _PreparedShard:
    """Record-cache lookups plus the batched timing-aware reachability pass.

    Everything *before* GroupACE resolution: the returned object carries the
    dynamically reachable error sets the prefetch (per-shard or
    campaign-spanning) still has to resolve.
    """
    config = session.config
    telemetry = session.telemetry
    cache = session.verdict_cache
    with_orace = bool(config.compute_orace)
    wires = session.system.structure_wires(plan.structure)
    chosen = [(index, wires[index]) for index in shard.wire_indices]

    cached: Dict[Tuple[int, float], InjectionRecord] = {}
    if cache is not None:
        for index, _ in chosen:
            for delay in shard.delay_fractions:
                payload = cache.get_record(
                    _record_key_of(session, plan, shard, index, delay)
                )
                if payload is not None:
                    cached[(index, delay)] = record_from_payload(
                        payload, index, shard.cycle, delay
                    )
        telemetry.incr("record_cache_hits", len(cached))

    prepared = _PreparedShard(shard=shard, chosen=chosen, cached=cached)
    pending = shard.injection_pairs(skip=cached)
    if pending:
        prepared.waves = session.waveforms(shard.cycle)
        prepared.checkpoint = session.checkpoint(shard.cycle)
        # Batched timing-aware pass: resolve every pending dynamically
        # reachable set through the shared-cone batch API up front, so the
        # per-record evaluation afterwards runs against warm per-cycle memos.
        wire_of = dict(chosen)
        lane_width = int(getattr(plan, "lane_width", config.lane_width))
        prepared.reach_sets = session.dynamic.reachable_set_batch(
            prepared.waves,
            [(wire_of[index], delay) for index, delay in pending],
            lanes=lane_width,
        )
    return prepared


def _record_key_of(session, plan, shard, index: int, delay: float) -> str:
    return record_key(
        plan.structure, shard.cycle, index, delay,
        bool(session.config.compute_orace), session.system.clock_period,
    )


def _evaluate_shard(
    session, plan: CampaignPlan, prepared: _PreparedShard
) -> ShardResult:
    """The per-record evaluation loop over a prepared shard."""
    shard = prepared.shard
    config = session.config
    cache = session.verdict_cache
    with_orace = bool(config.compute_orace)
    by_delay: Dict[float, List[InjectionRecord]] = {
        delay: [] for delay in shard.delay_fractions
    }
    with session.telemetry.timer("evaluate"):
        for index, wire in prepared.chosen:
            for delay in shard.delay_fractions:
                record = prepared.cached.get((index, delay))
                if record is None:
                    record = session.evaluator.evaluate(
                        prepared.waves,
                        prepared.checkpoint,
                        wire,
                        index,
                        delay,
                        with_orace=with_orace,
                    )
                    if cache is not None:
                        cache.put_record(
                            _record_key_of(session, plan, shard, index, delay),
                            record_to_payload(record),
                        )
                by_delay[delay].append(record)
    if cache is not None:
        # Every record of this shard is now in the store: mark the shard
        # complete (resume skips it) and persist incrementally.  The flush is
        # throttled — per-shard read-merge-rewrite under the inter-process
        # lock would serialize workers on disk I/O — with unconditional
        # flushes at worker exit and campaign end guaranteeing completeness.
        cache.mark_shard_complete(
            shard_key(
                plan.structure, shard.cycle, shard.wire_indices,
                shard.delay_fractions, with_orace, session.system.clock_period,
            )
        )
        cache.flush_throttled(
            every_n=getattr(config, "flush_every_shards", 8),
            max_seconds=getattr(config, "flush_max_seconds", 10.0),
        )
    return ShardResult(shard_index=shard.index, by_delay=by_delay)


def _execute_shard_body(session, plan: CampaignPlan, shard: WorkShard) -> ShardResult:
    prepared = _prepare_shard(session, plan, shard)
    lane_width = int(getattr(plan, "lane_width", session.config.lane_width))
    if prepared.reach_sets and lane_width > 1:
        with session.telemetry.timer("prefetch"):
            session.group_ace.prefetch_spanning(
                _group_ace_queries(
                    session, [(prepared.checkpoint, prepared.reach_sets)]
                ),
                lanes=lane_width,
            )
    return _evaluate_shard(session, plan, prepared)


def _group_ace_queries(session, checkpointed_sets):
    """Flatten (checkpoint, reach sets) pairs into spanning prefetch items.

    ``checkpointed_sets`` holds one entry per prepared shard.  Collects each
    non-empty dynamically reachable set — plus the per-member singleton sets
    ORACE requires for multi-bit errors — so one lane-parallel resolution
    makes the scalar evaluation pass afterwards pure cache hits.
    """
    queries = []
    orace = bool(session.config.compute_orace)
    for checkpoint, reach_sets in checkpointed_sets:
        for errors in reach_sets:
            if not errors:
                continue
            queries.append((checkpoint, errors))
            if orace and len(errors) > 1:
                queries.extend(
                    (checkpoint, {dff: value}) for dff, value in errors.items()
                )
    return queries


def prepare_plan_shards(
    session, plan: CampaignPlan
) -> List[_PreparedShard]:
    """Prepare every shard of a plan (pass 1 of the spanning path)."""
    prepared_shards: List[_PreparedShard] = []
    for shard in plan.shards:
        with tracing.span(
            "shard.execute",
            cat="shard",
            structure=plan.structure,
            shard=shard.index,
            cycle=shard.cycle,
            wires=len(shard.wire_indices),
            delays=len(shard.delay_fractions),
        ):
            prepared_shards.append(_prepare_shard(session, plan, shard))
    return prepared_shards


def plan_queries(session, prepared_shards: List[_PreparedShard]):
    """Spanning GroupACE/ORACE queries still unresolved after preparation."""
    return _group_ace_queries(
        session,
        [
            (prepared.checkpoint, prepared.reach_sets)
            for prepared in prepared_shards
            if prepared.reach_sets
        ],
    )


def evaluate_prepared_shards(
    session, plan: CampaignPlan, prepared_shards: List[_PreparedShard],
    progress=None,
) -> List[ShardResult]:
    """Per-shard evaluation loops (pass 3 of the spanning path)."""
    telemetry = session.telemetry
    results = []
    for prepared in prepared_shards:
        before = telemetry.snapshot() if progress is not None else None
        with tracing.span(
            "shard.evaluate", cat="executor",
            structure=plan.structure, shard=prepared.shard.index,
        ):
            result = _evaluate_shard(session, plan, prepared)
        if progress is not None:
            progress.shard_done(telemetry.diff(before))
        results.append(result)
    return results


def execute_shards_spanning(
    session, plan: CampaignPlan, progress=None
) -> List[ShardResult]:
    """Run a plan's shards with lane packing spanning the whole campaign.

    Single cycles rarely contribute enough unique error sets to fill a
    64-lane word, so per-shard prefetching leaves most planes idle.  This
    path prepares *every* shard first (record-cache lookups, waveforms, the
    batched timing-aware reachability pass), resolves all GroupACE/ORACE
    queries of the campaign in one cross-checkpoint lane-parallel prefetch,
    then runs the per-shard evaluation loops against the warm cache.
    Records are byte-identical to the per-shard path — only the packing of
    the timing-agnostic simulations changes.  (One engine can pack even
    wider — across whole campaigns — via
    :meth:`repro.core.campaign.DelayAVFEngine.run_structures`.)
    """
    telemetry = session.telemetry
    prepared_shards = prepare_plan_shards(session, plan)
    queries = plan_queries(session, prepared_shards)
    lane_width = int(getattr(plan, "lane_width", session.config.lane_width))
    if queries:
        with tracing.span(
            "campaign.prefetch", cat="executor",
            queries=len(queries), lanes=lane_width,
        ):
            with telemetry.timer("prefetch"):
                session.group_ace.prefetch_spanning(queries, lanes=lane_width)
    return evaluate_prepared_shards(session, plan, prepared_shards, progress)


def merge_shard_results(
    plan: CampaignPlan, shard_results: Sequence[ShardResult]
) -> StructureCampaignResult:
    """Deterministic merge: shard (= cycle) order, then shard-internal order.

    Keyed by ``shard_index`` so out-of-order completion (a parallel pool) and
    in-order completion (the serial executor) assemble byte-identical
    results.
    """
    result = StructureCampaignResult(
        structure=plan.structure,
        benchmark=plan.benchmark,
        wire_count=plan.wire_count,
        sampled_wires=len(plan.wire_indices),
        sampled_cycles=plan.sampled_cycles,
        by_delay={
            delay: DelayAVFResult(
                structure=plan.structure,
                benchmark=plan.benchmark,
                delay_fraction=delay,
            )
            for delay in plan.delay_fractions
        },
    )
    for shard_result in sorted(shard_results, key=lambda s: s.shard_index):
        for delay in plan.delay_fractions:
            result.by_delay[delay].records.extend(shard_result.by_delay[delay])
    return result


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
class Executor(abc.ABC):
    """Strategy for running a plan's shards against session state."""

    @abc.abstractmethod
    def execute(
        self,
        plan: CampaignPlan,
        session=None,
        spec: Optional[SessionSpec] = None,
        progress=None,
    ) -> List[ShardResult]:
        """Run every shard of *plan*; results may arrive in any order.

        *progress*, when given, is a :class:`repro.core.progress.ProgressReporter`
        notified as shards complete (``shard_done``) and as recovery actions
        fire (``note``) so long campaigns stream liveness to stderr and the
        heartbeat file.
        """

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release executor resources (worker pools); idempotent."""


class SerialExecutor(Executor):
    """In-process execution against a live session (default behaviour).

    With a packed lane width (``plan.lane_width > 1``) the serial path packs
    GroupACE resolution *across* shards (:func:`execute_shards_spanning`);
    at width 1 it runs the historical one-shard-at-a-time loop.
    """

    def execute(self, plan, session=None, spec=None, progress=None):
        if session is None:
            if spec is None:
                raise ValueError("SerialExecutor needs a session or a spec")
            session = spec.build_session()
        lane_width = int(getattr(plan, "lane_width", session.config.lane_width))
        if lane_width > 1:
            return execute_shards_spanning(session, plan, progress)
        results = []
        for shard in plan.shards:
            before = session.telemetry.snapshot() if progress is not None else None
            result = execute_shard(session, plan, shard)
            if progress is not None:
                progress.shard_done(session.telemetry.diff(before))
            results.append(result)
        return results


# Per-worker-process session, built once by the pool initializer.
_WORKER_SESSION = None


def _worker_flush() -> None:
    """Final unconditional flush of a worker's verdict cache at process exit.

    Pool workers exit normally when the pool shuts down (they drain a
    sentinel), so this ``atexit`` hook runs and persists whatever the
    throttled per-shard flushes have not yet written.  A crashed worker
    (``os._exit``, OOM kill) skips it — the engine's post-merge re-put of
    every record covers that case.
    """
    session = _WORKER_SESSION
    if session is not None and session.verdict_cache is not None:
        session.verdict_cache.flush()


def _worker_init(spec: SessionSpec) -> None:
    global _WORKER_SESSION
    # A forked worker inherits the parent's tracer buffer — reset it so the
    # coordinator's spans do not come back duplicated with shard results, and
    # enable tracing only when the campaign asked for it.
    tracing.configure(
        bool(getattr(spec.config, "trace", False)), reset=True
    )
    _WORKER_SESSION = spec.build_session()
    atexit.register(_worker_flush)


def _maybe_inject_worker_fault(shard: WorkShard) -> None:
    """Test seam: deterministically fault a pool worker (CI fault smoke).

    ``REPRO_FAULT_WORKER=<mode>:<shard index>`` faults the worker that picks
    up the named shard; *mode* is ``crash`` (``os._exit``, breaking the
    pool), ``hang`` (sleep ``REPRO_FAULT_HANG_SECONDS``, default 3600, to
    trip the per-shard timeout), or ``raise`` (an ordinary exception, to
    exercise retry).  When ``REPRO_FAULT_ONCE_FILE`` names a marker file the
    fault fires at most once across all workers and attempts — the first
    process to atomically create the marker wins.  Only pool workers call
    this, so the serial path (and the serial *fallback* path) is immune by
    construction.
    """
    directive = os.environ.get("REPRO_FAULT_WORKER")
    if not directive:
        return
    mode, _, index = directive.partition(":")
    if not index or shard.index != int(index):
        return
    marker = os.environ.get("REPRO_FAULT_ONCE_FILE")
    if marker:
        try:
            os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except FileExistsError:
            return  # the fault already fired once
    if mode == "crash":
        os._exit(23)
    elif mode == "hang":
        time.sleep(float(os.environ.get("REPRO_FAULT_HANG_SECONDS", "3600")))
    elif mode == "raise":
        raise RuntimeError(f"injected worker fault on shard {shard.index}")


def _worker_run_shard(item: Tuple[CampaignPlan, WorkShard]) -> ShardResult:
    plan, shard = item
    _maybe_inject_worker_fault(shard)
    session = _WORKER_SESSION
    before = session.telemetry.snapshot()
    result = execute_shard(session, plan, shard)
    result.telemetry = session.telemetry.diff(before)
    if tracing.enabled():
        # Spans are plain dicts: they pickle back with the result, and the
        # coordinator folds them into its own buffer (one trace per campaign,
        # one Perfetto track per worker pid).
        result.spans = tracing.drain()
    return result


class ShardExecutionError(RuntimeError):
    """A shard kept failing after its full retry budget was spent."""


class ParallelExecutor(Executor):
    """Fault-tolerant process-pool execution from a rebuilt-per-worker session.

    The pool (and with it every worker's session and caches) persists across
    :meth:`execute` calls until :meth:`close` or a different spec arrives.
    Requires a picklable :class:`SessionSpec` — construct the engine via
    :meth:`repro.core.campaign.DelayAVFEngine.from_spec` (or pass ``spec=``)
    to use it.

    Failure handling, per :meth:`execute` call:

    - A shard that *raises* in its worker is retried with exponential
      backoff, up to *max_retries* further attempts, then the error
      propagates as :class:`ShardExecutionError`.
    - A shard that exceeds *shard_timeout* seconds counts as a pool failure
      too: the hung worker cannot be cancelled, so the pool is recycled
      (workers terminated) and unfinished shards re-submitted.  The timeout
      clock for a shard starts when the executor begins waiting on its
      future; waits happen in submission order, so time spent on earlier
      shards only ever *extends* a later shard's effective budget — the
      timeout is conservative, never premature.  Budget it to cover a cold
      worker's golden run plus the slowest expected shard.
    - A dead worker (``BrokenProcessPool``) poisons the whole pool: finished
      futures are harvested, the pool is rebuilt, and only unfinished shards
      are re-submitted — up to *max_pool_rebuilds* times, after which the
      remaining shards degrade gracefully to in-process serial execution.
      Results stay byte-identical because shard execution is deterministic
      and the merge is order-independent.
    """

    def __init__(
        self,
        jobs: int = 2,
        mp_context=None,
        shard_timeout: Optional[float] = None,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        max_pool_rebuilds: int = 1,
    ):
        self.jobs = max(1, int(jobs))
        self.shard_timeout = shard_timeout
        self.max_retries = max(0, int(max_retries))
        self.retry_backoff = max(0.0, float(retry_backoff))
        self.max_pool_rebuilds = max(0, int(max_pool_rebuilds))
        self._mp_context = mp_context
        self._pool: Optional[ProcessPoolExecutor] = None
        self._spec: Optional[SessionSpec] = None
        self._fallback_session = None

    def execute(self, plan, session=None, spec=None, progress=None):
        if spec is None:
            raise ValueError(
                "ParallelExecutor needs a picklable SessionSpec; construct "
                "the engine via DelayAVFEngine.from_spec(...)"
            )
        # Recovery actions are charged to the campaign's telemetry when the
        # engine's live session rides along (the normal path); direct calls
        # without one still work, their counters just land in a throwaway.
        telemetry = session.telemetry if session is not None else CampaignTelemetry()
        done: Dict[int, ShardResult] = {}
        pending: Dict[int, WorkShard] = {shard.index: shard for shard in plan.shards}
        attempts: Dict[int, int] = {index: 0 for index in pending}
        rebuilds_left = self.max_pool_rebuilds
        retry_rounds = 0
        while pending:
            pool = self._ensure_pool(spec)
            with tracing.span(
                "executor.submit", cat="executor", shards=len(pending)
            ):
                futures = [
                    (index, pool.submit(_worker_run_shard, (plan, pending[index])))
                    for index in sorted(pending)
                ]
            pool_failed = had_retries = False
            for index, future in futures:
                if pool_failed:
                    # Harvest shards that finished before the failure ("only
                    # unfinished shards are re-submitted"); abandon the rest.
                    if future.done() and not future.cancelled():
                        try:
                            done[index] = future.result(timeout=0)
                            pending.pop(index)
                            self._harvested(done[index], progress)
                            continue
                        except Exception:
                            pass
                    future.cancel()
                    continue
                try:
                    done[index] = future.result(timeout=self.shard_timeout)
                    pending.pop(index)
                    self._harvested(done[index], progress)
                except BrokenExecutor:
                    pool_failed = True
                except FutureTimeoutError:
                    telemetry.incr("shard_timeouts")
                    tracing.instant(
                        "executor.shard_timeout", cat="executor", shard=index
                    )
                    if progress is not None:
                        progress.note("timeouts")
                    attempts[index] += 1
                    pool_failed = True  # the hung worker poisons the pool
                except Exception as exc:
                    attempts[index] += 1
                    if attempts[index] > self.max_retries:
                        raise ShardExecutionError(
                            f"shard {index} (cycle {pending[index].cycle}) "
                            f"failed {attempts[index]} times; giving up"
                        ) from exc
                    telemetry.incr("shard_retries")
                    tracing.instant(
                        "executor.retry", cat="executor", shard=index
                    )
                    if progress is not None:
                        progress.note("retries")
                    had_retries = True
            if pool_failed:
                with tracing.span("executor.pool_rebuild", cat="executor"):
                    self._discard_pool()
                if rebuilds_left > 0:
                    rebuilds_left -= 1
                    telemetry.incr("pool_rebuilds")
                    telemetry.incr("shard_retries", len(pending))
                    if progress is not None:
                        progress.note("pool_rebuilds")
                    continue
                # Pool-rebuild budget exhausted: limp home in-process.
                telemetry.incr("serial_fallbacks")
                if progress is not None:
                    progress.note("serial_fallbacks")
                with tracing.span(
                    "executor.serial_fallback", cat="executor",
                    shards=len(pending),
                ):
                    fallback = self._serial_session(session, spec)
                    for index in sorted(pending):
                        before = (
                            fallback.telemetry.snapshot()
                            if progress is not None
                            else None
                        )
                        done[index] = execute_shard(fallback, plan, pending[index])
                        if progress is not None:
                            progress.shard_done(fallback.telemetry.diff(before))
                pending.clear()
            elif had_retries and pending:
                retry_rounds += 1
                time.sleep(
                    min(2.0, self.retry_backoff * (2 ** (retry_rounds - 1)))
                )
        return [done[index] for index in sorted(done)]

    @staticmethod
    def _harvested(result: ShardResult, progress) -> None:
        """Progress bookkeeping for one shard result back from the pool."""
        if progress is not None:
            progress.shard_done(result.telemetry)

    def _serial_session(self, session, spec: SessionSpec):
        """The session serial-fallback shards run against.

        Prefers the engine's live session (records and telemetry then flow
        exactly like a :class:`SerialExecutor` run); a standalone executor
        builds one from the spec and keeps it for subsequent fallbacks.
        """
        if session is not None:
            return session
        if self._fallback_session is None:
            self._fallback_session = spec.build_session()
        return self._fallback_session

    def _ensure_pool(self, spec: SessionSpec) -> ProcessPoolExecutor:
        if self._pool is not None and self._spec != spec:
            self.close()
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=self._mp_context,
                initializer=_worker_init,
                initargs=(spec,),
            )
            self._spec = spec
        return self._pool

    def _discard_pool(self) -> None:
        """Tear down a broken or hung pool without waiting on its workers.

        Hung workers never drain the shutdown sentinel, so they are
        terminated outright before the (non-blocking) shutdown; a later
        :meth:`_ensure_pool` builds a fresh pool.
        """
        pool, self._pool, self._spec = self._pool, None, None
        if pool is None:
            return
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._spec = None
        if self._fallback_session is not None:
            if self._fallback_session.verdict_cache is not None:
                self._fallback_session.verdict_cache.flush()
            self._fallback_session = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
