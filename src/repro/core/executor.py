"""Campaign execution: pluggable executors over planned work shards.

The campaign engine plans a structure campaign into per-cycle
:class:`repro.core.plan.WorkShard` descriptors and hands them to an
:class:`Executor`:

- :class:`SerialExecutor` runs every shard in-process against the engine's
  live :class:`repro.core.campaign.CampaignSession` (the historical
  behaviour, and the default).
- :class:`ParallelExecutor` fans shards out to a ``ProcessPoolExecutor``.
  Each worker rebuilds the session once from a picklable
  :class:`SessionSpec` (system factory + program + config) and then serves
  shards from its warm caches; the pool is kept alive across
  ``run_structure`` calls so consecutive structure campaigns reuse worker
  sessions exactly like the serial engine reuses its one session.

Shard results are merged deterministically in plan order, so serial and
parallel runs produce identical :class:`StructureCampaignResult` records —
the executors differ only in wall-clock time and telemetry.
"""

from __future__ import annotations

import abc
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.cache import record_from_payload, record_key, record_to_payload
from repro.core.plan import CampaignPlan, WorkShard
from repro.core.results import DelayAVFResult, InjectionRecord, StructureCampaignResult


@dataclass(frozen=True)
class SessionSpec:
    """Everything a worker needs to rebuild a campaign session.

    ``system_factory`` must be picklable by reference (a module-level
    callable, e.g. :func:`repro.soc.system.build_system`); ``factory_kwargs``
    is a tuple of ``(name, value)`` pairs so the spec stays hashable-free but
    comparable and picklable.
    """

    system_factory: Callable[..., Any]
    program: Any  #: :class:`repro.isa.assembler.Program`
    config: Any  #: :class:`repro.core.campaign.CampaignConfig`
    factory_kwargs: Tuple[Tuple[str, Any], ...] = ()

    def build_system(self):
        return self.system_factory(**dict(self.factory_kwargs))

    def build_session(self):
        """Rebuild the full campaign session (golden run, analyzers, cache)."""
        from repro.core.campaign import CampaignSession

        system = self.build_system()
        return CampaignSession(
            system,
            self.program,
            self.config,
            verdict_cache=open_configured_cache(system, self.program, self.config),
            _internal=True,
        )


def open_configured_cache(system, program, config):
    """The :class:`VerdictCache` named by ``config.cache_dir`` (or ``None``)."""
    if not getattr(config, "cache_dir", None):
        return None
    from repro.core.cache import VerdictCache

    return VerdictCache.open(config.cache_dir, system.netlist, program, config)


@dataclass
class ShardResult:
    """One executed shard: per-delay records plus the worker's telemetry."""

    shard_index: int
    by_delay: Dict[float, List[InjectionRecord]]
    telemetry: Optional[Dict[str, Dict]] = None  #: telemetry snapshot delta


# ----------------------------------------------------------------------
# The shard inner loop (shared verbatim by both executors)
# ----------------------------------------------------------------------
def execute_shard(session, plan: CampaignPlan, shard: WorkShard) -> ShardResult:
    """Run every (wire, delay) injection of one sampled cycle.

    Loops are wire-outer / delay-inner within the shard — combined with the
    plan's cycle-per-shard decomposition this reproduces the legacy engine's
    cycle-outermost §V-C cache-reuse order exactly.

    Completed injections are served from the persistent record cache when one
    is attached; the shard only builds waveforms and checkpoints (the
    expensive timing-aware event simulation) for the injections it actually
    has to evaluate, so a fully warm shard never touches the event simulator.
    Cold injections first flow through the batched timing-aware engine
    (:meth:`DynamicReachability.reachable_set_batch`), which amortizes
    fan-out-cone construction and fault-free waveform slicing across the
    whole cycle before the per-record evaluation loop runs.
    """
    config = session.config
    telemetry = session.telemetry
    cache = session.verdict_cache
    with_orace = bool(config.compute_orace)
    wires = session.system.structure_wires(plan.structure)
    chosen = [(index, wires[index]) for index in shard.wire_indices]

    def key_of(index: int, delay: float) -> str:
        return record_key(
            plan.structure, shard.cycle, index, delay,
            with_orace, session.system.clock_period,
        )

    cached: Dict[Tuple[int, float], InjectionRecord] = {}
    if cache is not None:
        for index, _ in chosen:
            for delay in shard.delay_fractions:
                payload = cache.get_record(key_of(index, delay))
                if payload is not None:
                    cached[(index, delay)] = record_from_payload(
                        payload, index, shard.cycle, delay
                    )
        telemetry.incr("record_cache_hits", len(cached))

    pending = shard.injection_pairs(skip=cached)
    waves = checkpoint = None
    if pending:
        waves = session.waveforms(shard.cycle)
        checkpoint = session.checkpoint(shard.cycle)
        # Batched timing-aware pass: resolve every pending dynamically
        # reachable set through the shared-cone batch API up front, so the
        # per-record evaluation below runs against warm per-cycle memos.
        wire_of = dict(chosen)
        reach_sets = session.dynamic.reachable_set_batch(
            waves, [(wire_of[index], delay) for index, delay in pending]
        )
        if config.batch_lanes > 1:
            with telemetry.timer("prefetch"):
                _prefetch_group_ace(session, checkpoint, reach_sets, config)

    by_delay: Dict[float, List[InjectionRecord]] = {
        delay: [] for delay in shard.delay_fractions
    }
    with telemetry.timer("evaluate"):
        for index, wire in chosen:
            for delay in shard.delay_fractions:
                record = cached.get((index, delay))
                if record is None:
                    record = session.evaluator.evaluate(
                        waves,
                        checkpoint,
                        wire,
                        index,
                        delay,
                        with_orace=with_orace,
                    )
                    if cache is not None:
                        cache.put_record(
                            key_of(index, delay), record_to_payload(record)
                        )
                by_delay[delay].append(record)
    return ShardResult(shard_index=shard.index, by_delay=by_delay)


def _prefetch_group_ace(session, checkpoint, reach_sets, config) -> None:
    """Batch-resolve this cycle's GroupACE (and ORACE) queries.

    ``reach_sets`` holds the dynamically reachable sets the batched
    timing-aware pass already computed for every pending injection.  Collects
    each non-empty set — plus the per-member singleton sets ORACE requires
    for multi-bit errors — and resolves them lane-parallel, so the scalar
    evaluation pass afterwards is pure cache hits.
    """
    queries = []
    for errors in reach_sets:
        if not errors:
            continue
        queries.append(errors)
        if config.compute_orace and len(errors) > 1:
            queries.extend({dff: value} for dff, value in errors.items())
    if queries:
        session.group_ace.prefetch(
            checkpoint, queries, lanes=config.batch_lanes
        )


def merge_shard_results(
    plan: CampaignPlan, shard_results: Sequence[ShardResult]
) -> StructureCampaignResult:
    """Deterministic merge: shard (= cycle) order, then shard-internal order.

    Keyed by ``shard_index`` so out-of-order completion (a parallel pool) and
    in-order completion (the serial executor) assemble byte-identical
    results.
    """
    result = StructureCampaignResult(
        structure=plan.structure,
        benchmark=plan.benchmark,
        wire_count=plan.wire_count,
        sampled_wires=len(plan.wire_indices),
        sampled_cycles=plan.sampled_cycles,
        by_delay={
            delay: DelayAVFResult(
                structure=plan.structure,
                benchmark=plan.benchmark,
                delay_fraction=delay,
            )
            for delay in plan.delay_fractions
        },
    )
    for shard_result in sorted(shard_results, key=lambda s: s.shard_index):
        for delay in plan.delay_fractions:
            result.by_delay[delay].records.extend(shard_result.by_delay[delay])
    return result


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
class Executor(abc.ABC):
    """Strategy for running a plan's shards against session state."""

    @abc.abstractmethod
    def execute(
        self,
        plan: CampaignPlan,
        session=None,
        spec: Optional[SessionSpec] = None,
    ) -> List[ShardResult]:
        """Run every shard of *plan*; results may arrive in any order."""

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release executor resources (worker pools); idempotent."""


class SerialExecutor(Executor):
    """In-process execution against a live session (default behaviour)."""

    def execute(self, plan, session=None, spec=None):
        if session is None:
            if spec is None:
                raise ValueError("SerialExecutor needs a session or a spec")
            session = spec.build_session()
        return [execute_shard(session, plan, shard) for shard in plan.shards]


# Per-worker-process session, built once by the pool initializer.
_WORKER_SESSION = None


def _worker_init(spec: SessionSpec) -> None:
    global _WORKER_SESSION
    _WORKER_SESSION = spec.build_session()


def _worker_run_shard(item: Tuple[CampaignPlan, WorkShard]) -> ShardResult:
    plan, shard = item
    session = _WORKER_SESSION
    before = session.telemetry.snapshot()
    result = execute_shard(session, plan, shard)
    result.telemetry = session.telemetry.diff(before)
    if session.verdict_cache is not None:
        session.verdict_cache.flush()
    return result


class ParallelExecutor(Executor):
    """Process-pool execution from a rebuilt-per-worker session.

    The pool (and with it every worker's session and caches) persists across
    :meth:`execute` calls until :meth:`close` or a different spec arrives.
    Requires a picklable :class:`SessionSpec` — construct the engine via
    :meth:`repro.core.campaign.DelayAVFEngine.from_spec` (or pass ``spec=``)
    to use it.
    """

    def __init__(self, jobs: int = 2, mp_context=None):
        self.jobs = max(1, int(jobs))
        self._mp_context = mp_context
        self._pool: Optional[ProcessPoolExecutor] = None
        self._spec: Optional[SessionSpec] = None

    def execute(self, plan, session=None, spec=None):
        if spec is None:
            raise ValueError(
                "ParallelExecutor needs a picklable SessionSpec; construct "
                "the engine via DelayAVFEngine.from_spec(...)"
            )
        pool = self._ensure_pool(spec)
        return list(
            pool.map(_worker_run_shard, [(plan, shard) for shard in plan.shards])
        )

    def _ensure_pool(self, spec: SessionSpec) -> ProcessPoolExecutor:
        if self._pool is not None and self._spec != spec:
            self.close()
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=self._mp_context,
                initializer=_worker_init,
                initargs=(spec,),
            )
            self._spec = spec
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._spec = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
