#!/usr/bin/env python3
"""Applying DelayAVF to *your own* hardware: a custom accumulator design.

The DelayAVF machinery is not tied to the IbexMini core — anything expressed
as a :class:`repro.netlist.Netlist` with an :class:`Environment` can be
analyzed.  This example builds a small MAC (multiply-accumulate-ish) datapath
from scratch, defines a workload, and computes per-structure DelayAVF with
the same two-step methodology.

It also demonstrates the timing-library hook: the same design is analyzed
under the default NanGate-45-like library and under a slowed "weak-cells"
variant loaded from the mini-Liberty text format, showing how DelayAVF moves
when the cell timing changes.

Run:  python examples/custom_core_analysis.py
"""

from typing import Dict

from repro.core.delayavf import DelayAceEvaluator
from repro.core.dynamic_reach import DynamicReachability
from repro.core.group_ace import GroupAceAnalyzer
from repro.core.static_reach import StaticReachability
from repro.hdl.ops import Reg, adder, band, bxor, const_bus, mux
from repro.netlist.netlist import Netlist
from repro.netlist.validate import validate
from repro.sim.cyclesim import CycleSimulator, Environment
from repro.sim.eventsim import EventSimulator
from repro.timing.liberty import NANGATE45ISH, dump_library, parse_library
from repro.timing.sta import StaticTiming


def build_mac_core() -> Netlist:
    """acc' = acc + (a & b) ^ (sel ? a : b), with an output port."""
    nl = Netlist()
    a = nl.add_input("a", 16)
    b = nl.add_input("b", 16)
    sel = nl.add_input("sel", 1)[0]
    with nl.scope("datapath"):
        masked = band(nl, a, b)
        chosen = mux(nl, sel, a, b)
        term = bxor(nl, masked, chosen)
    with nl.scope("accumulator"):
        acc = Reg(nl, "acc", 16)
        total, _ = adder(nl, acc.q, term)
        acc.set(total)
    nl.add_output("acc", acc.q)
    validate(nl)
    nl.freeze()
    return nl


class MacWorkload(Environment):
    """Feeds a fixed operand stream; the output is the final accumulator."""

    def __init__(self, length: int = 40):
        self.length = length
        self.cycle_count = 0
        self.log = []

    def _inputs(self, cycle: int) -> Dict[str, int]:
        return {
            "a": (cycle * 0x1234 + 7) & 0xFFFF,
            "b": (cycle * 0x0891 + 3) & 0xFFFF,
            "sel": cycle & 1,
        }

    def reset(self):
        self.cycle_count = 0
        self.log = []
        return self._inputs(0)

    def step(self, outputs, cycle):
        self.cycle_count += 1
        if self.cycle_count == self.length:  # program output = final acc
            self.log.append(("acc", outputs["acc"]))
        return self._inputs(self.cycle_count)

    def snapshot(self):
        return (self.cycle_count, tuple(self.log))

    def restore(self, snap):
        self.cycle_count, log = snap
        self.log = list(log)

    def fingerprint(self):
        return hash((self.cycle_count, tuple(self.log)))

    def observables(self):
        return tuple(self.log)

    def halted(self):
        return self.cycle_count >= self.length


def analyze(netlist: Netlist, library, label: str) -> None:
    sta = StaticTiming(netlist, library)
    event_sim = EventSimulator(netlist, sta)
    sim = CycleSimulator(netlist)
    golden = sim.run(MacWorkload(), max_cycles=100, record_fingerprints=True,
                     checkpoint_cycles=range(5, 36, 6))

    class _Sys:  # minimal system adapter for the analyzers
        def simulator(self_inner):
            return CycleSimulator(netlist)

        def make_env(self_inner, _program):
            return MacWorkload()

    group = GroupAceAnalyzer(_Sys(), None, golden, margin_cycles=100)
    static = StaticReachability(sta)
    dynamic = DynamicReachability(event_sim, static)
    evaluator = DelayAceEvaluator(static, dynamic, group)

    print(f"\n=== {label}: clock period {sta.clock_period:.0f} ps ===")
    for structure in ("datapath", "accumulator"):
        wires = netlist.wires_of_structure(structure)
        records = []
        for cycle in sorted(golden.checkpoints):
            ckpt = golden.checkpoints[cycle]
            waves = event_sim.simulate_cycle(
                ckpt.prev_settled, ckpt.dff_values, ckpt.input_values, cycle
            )
            for index, wire in enumerate(wires[::3]):
                records.append(
                    evaluator.evaluate(waves, ckpt, wire, index, 0.7,
                                       with_orace=False)
                )
        failures = sum(r.delay_ace for r in records)
        dyn = sum(r.dynamically_reachable for r in records)
        print(f"  {structure:12s}: {len(wires):4d} wires, "
              f"{len(records):4d} injections at d=70% -> "
              f"{dyn:3d} error sets, DelayAVF = {failures / len(records):.3f}")


def main() -> None:
    netlist = build_mac_core()
    print(f"custom design: {netlist.num_cells} cells, {netlist.num_dffs} DFFs")

    analyze(netlist, NANGATE45ISH, "NanGate-45-like library")

    # A degraded library: every cell 40% slower (e.g. a weak process corner).
    text = dump_library(NANGATE45ISH)
    slow = parse_library(
        "".join(
            line if "intrinsic" not in line else _scale_line(line, 1.4)
            for line in text.splitlines(keepends=True)
        )
    )
    analyze(netlist, slow, "weak-corner library (+40% cell delay)")
    print("\nNote: the clock period scales with the slower cells, so the")
    print("*relative* DelayAVF picture is what a designer compares.")


def _scale_line(line: str, factor: float) -> str:
    import re

    def repl(match):
        return f"intrinsic: {float(match.group(1)) * factor:.1f};"

    return re.sub(r"intrinsic:\s*([0-9.]+);", repl, line)


if __name__ == "__main__":
    main()
