#!/usr/bin/env python3
"""Quickstart: estimate the DelayAVF of one structure for one workload.

Uses the one-call :mod:`repro.api` facade: ``analyze(structure, workload)``
builds the IbexMini system, runs the golden simulation, and executes the
sampled injection campaign — the end-to-end version of the paper's
Eq. (3)/(4) pipeline:

    DelayACE_d(e, i) = GroupACE(DynamicReachable_d(e, i), i + 1)

Repeated ``analyze`` calls for the same workload share one cached engine
(golden run, waveform and GroupACE caches), so sweeping structures below
costs a single workload simulation.

Run:  python examples/quickstart.py
"""

from repro import CampaignConfig, analyze, shutdown


def main() -> None:
    config = CampaignConfig(
        delay_fractions=(0.5, 0.9),
        cycle_count=6,     # equally spaced injection cycles
        max_wires=24,      # sampled wires per structure
        seed=1,
    )

    print("Running the golden simulation and the injection campaign...")
    try:
        for structure in ("alu", "decoder", "regfile"):
            result = analyze(structure, "md5", config=config)
            for delay in (0.5, 0.9):
                r = result.by_delay[delay]
                print(
                    f"  {structure:8s} d={delay:.0%}  |E|={result.wire_count:5d}  "
                    f"static-reach={r.static_reach_rate:5.1%}  "
                    f"dynamic-reach={r.dynamic_reach_rate:5.1%}  "
                    f"DelayAVF={r.delay_avf:6.3f}  "
                    f"({r.samples} sampled injections)"
                )
    finally:
        shutdown()


if __name__ == "__main__":
    main()
