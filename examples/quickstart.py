#!/usr/bin/env python3
"""Quickstart: estimate the DelayAVF of one structure for one workload.

Builds the IbexMini system, loads the ``md5`` benchmark, and runs a
small sampled campaign on three structures at delays of 50% and 90% of the clock period —
the end-to-end version of the paper's Eq. (3)/(4) pipeline:

    DelayACE_d(e, i) = GroupACE(DynamicReachable_d(e, i), i + 1)

Run:  python examples/quickstart.py
"""

from repro import DelayAVFEngine, build_system, load_benchmark
from repro.core.campaign import CampaignConfig

def main() -> None:
    print("Building the IbexMini system (gate-level RV32E core)...")
    system = build_system()
    netlist = system.netlist
    print(
        f"  {netlist.num_cells} cells, {netlist.num_dffs} state elements, "
        f"clock period {system.clock_period:.0f} ps"
    )

    program = load_benchmark("md5")
    print(f"Loaded benchmark {program.name!r} ({program.size} bytes)")

    config = CampaignConfig(
        delay_fractions=(0.5, 0.9),
        cycle_count=6,     # equally spaced injection cycles
        max_wires=24,      # sampled wires per structure
        seed=1,
    )
    print("Running the golden simulation and the injection campaign...")
    engine = DelayAVFEngine(system, program, config)
    print(f"  workload runs for {engine.session.total_cycles} cycles")

    for structure in ("alu", "decoder", "regfile"):
        result = engine.run_structure(structure)
        for delay in (0.5, 0.9):
            r = result.by_delay[delay]
            print(
                f"  {structure:8s} d={delay:.0%}  |E|={result.wire_count:5d}  "
                f"static-reach={r.static_reach_rate:5.1%}  "
                f"dynamic-reach={r.dynamic_reach_rate:5.1%}  "
                f"DelayAVF={r.delay_avf:6.3f}  "
                f"({r.samples} sampled injections)"
            )

    stats = engine.session.group_ace.stats
    print(
        f"GroupACE runs: {stats.runs} "
        f"(converged early: {stats.converged}, ran to halt: {stats.ran_to_halt})"
    )


if __name__ == "__main__":
    main()
