#!/usr/bin/env python3
"""Delay sweep: how vulnerability grows with SDF duration (Fig. 7/8 style).

Sweeps d from 10% to 90% of the clock period over two structures and prints
the three components of the DelayACE funnel per delay — showing the paper's
Observation 2: static circuit timing dominates at small d, while logical/
architectural masking (the static->dynamic->GroupACE narrowing) dominates
at large d.

Built on :func:`repro.api.sweep`: one call runs the full cross product of
structures and workloads, reusing each workload's cached engine across its
structures.

Run:  python examples/structure_sweep.py [benchmark]
"""

import sys

from repro import CampaignConfig, shutdown, sweep
from repro.analysis.tables import render_table

DELAYS = (0.1, 0.3, 0.5, 0.7, 0.9)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "md5"
    config = CampaignConfig(
        delay_fractions=DELAYS,
        cycle_count=6,
        max_wires=24,
        seed=3,
    )
    try:
        results = sweep(("alu", "regfile"), (benchmark,), config=config)
    finally:
        shutdown()

    for (structure, workload), result in results.items():
        rows = []
        for delay in DELAYS:
            r = result.by_delay[delay]
            rows.append([
                f"{delay:.0%}",
                f"{r.static_reach_rate:.1%}",
                f"{r.dynamic_reach_rate:.1%}",
                f"{r.delay_avf:.3f}",
                f"{r.multi_bit_fraction:.1%}",
            ])
        print()
        print(render_table(
            ["d", "static reach", "dynamic reach", "DelayAVF", "multi-bit"],
            rows,
            title=f"{structure} / {workload} ({result.wire_count} wires, "
                  f"{result.sampled_wires} sampled)",
        ))


if __name__ == "__main__":
    main()
