#!/usr/bin/env python3
"""Case study: why SEC ECC stops particle strikes but not delay faults.

Reproduces the paper's Fig. 11 / Observation 5 storyline on real gate-level
hardware:

1. sAVF view — flip any single stored bit of the ECC register file: the
   Hamming corrector repairs it on read, so no injection is ever ACE
   (sAVF = 0).
2. DelayAVF view — a small delay fault on a register-file wire can latch a
   *multi-bit* error (e.g. a stale word re-latched through the write mux, or
   several codeword bits arriving late together).  The stored pattern is
   either a consistent valid codeword of the wrong value or an uncorrectable
   multi-bit error — ECC passes and the corruption becomes architectural.

Run:  python examples/ecc_case_study.py
"""

from repro import build_system, load_benchmark
from repro.core.campaign import CampaignConfig, DelayAVFEngine
from repro.core.savf import SAVFEngine


def main() -> None:
    print("Building the ECC-protected IbexMini system...")
    system = build_system(use_ecc=True)
    program = load_benchmark("libstrstr")
    config = CampaignConfig(
        delay_fractions=(0.9,), cycle_count=6, max_wires=32, seed=2
    )
    engine = DelayAVFEngine(system, program, config)
    session = engine.session

    # ------------------------------------------------------------------
    # Particle-strike view: sAVF of the ECC register file.
    # ------------------------------------------------------------------
    print("\n[1] particle strikes: flipping single stored bits (sampled)")
    savf = SAVFEngine(session).run_structure("regfile", max_bits=48, seed=2)
    print(f"    {savf.samples} single-bit flips injected -> "
          f"{savf.ace_count} ACE  =>  sAVF = {savf.savf:.3f}")
    assert savf.savf == 0.0, "SEC must correct every single-bit error"

    # ------------------------------------------------------------------
    # Delay-fault view: DelayAVF of the same structure.
    # ------------------------------------------------------------------
    print("\n[2] small delay faults: +90% of the clock period on regfile wires")
    result = engine.run_structure("regfile").by_delay[0.9]
    print(f"    {result.samples} injections: "
          f"static-reach {result.static_reach_rate:.1%}, "
          f"state-element errors {result.dynamic_reach_rate:.1%}, "
          f"DelayAVF {result.delay_avf:.3f}")
    multi = [r for r in result.error_sets if r.multi_bit]
    print(f"    error-producing SDFs: {len(result.error_sets)} "
          f"({len(multi)} multi-bit)")

    # ------------------------------------------------------------------
    # The compounding mechanism, demonstrated directly.
    # ------------------------------------------------------------------
    print("\n[3] ACE compounding: a 2-bit storage error on a live register")
    live_bits = [
        d.index for d in system.netlist.dffs
        if d.name.startswith("core.regfile.x9[")  # x9 = output base pointer
    ][:2]
    for cycle in session.sampled_cycles:
        checkpoint = session.checkpoint(cycle)
        overrides = {
            b: int(checkpoint.dff_values[b]) ^ 1 for b in live_bits
        }
        group = session.group_ace.outcome_of_state_errors(
            checkpoint, overrides, at_next_boundary=False
        )
        singles = [
            session.group_ace.outcome_of_state_errors(
                checkpoint, {b: v}, at_next_boundary=False
            ).is_failure
            for b, v in overrides.items()
        ]
        print(f"    cycle {cycle:4d}: single-bit ACE = {singles}, "
              f"2-bit outcome = {group.value}")
        if group.is_failure and not any(singles):
            print("    -> ACE COMPOUNDING: the set is GroupACE although no "
                  "member is individually ACE (ORACE would miss this).")
            break


if __name__ == "__main__":
    main()
