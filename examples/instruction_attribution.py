#!/usr/bin/env python3
"""Which instructions are in flight when SDFs become failures?

Runs an ALU campaign on ``bubblesort`` and attributes every injection to the
architectural instruction occupying the pipeline during the faulty cycle —
the instruction-level view that complements the paper's structure-level
DelayAVF ranking (and feeds its §VIII test-generation idea).

Run:  python examples/instruction_attribution.py
"""

from repro import DelayAVFEngine, build_system, load_benchmark
from repro.analysis.tables import render_table
from repro.core.attribution import InstructionAttributor
from repro.core.campaign import CampaignConfig


def main() -> None:
    system = build_system()
    program = load_benchmark("bubblesort")
    config = CampaignConfig(
        delay_fractions=(0.7, 0.9), cycle_count=10, max_wires=24, seed=4
    )
    engine = DelayAVFEngine(system, program, config)
    result = engine.run_structure("alu")

    attributor = InstructionAttributor(engine.session)
    records = [
        record
        for per_delay in result.by_delay.values()
        for record in per_delay.records
    ]
    rows = attributor.attribute(records)

    print(render_table(
        ["pc", "instruction", "injections", "error sets", "failures"],
        [
            [f"{row.pc:#06x}" if row.pc >= 0 else "-", row.text,
             row.injections, row.error_sets, row.failures]
            for row in rows
        ],
        title=f"ALU injections attributed to in-flight instructions "
              f"({program.name}, d in {config.delay_fractions})",
    ))
    vulnerable = [r for r in rows if r.failures]
    if vulnerable:
        print("\nMost vulnerable instruction:", vulnerable[0].text)


if __name__ == "__main__":
    main()
